// E1 (part 2): every TRE protocol operation at the default (tre-512)
// parameter set — the practicality claim of §5.1/§5.3.1.
//
// Two modes:
//   * default: before/after comparison of the scalar-multiplication engine
//     (Tuning::legacy() vs Tuning::fast() plus the underlying primitives),
//     written as machine-readable ops-per-second to BENCH_tre_ops.json
//     (path overridable as the first positional argument).
//   * --gbench [benchmark flags...]: the google-benchmark suite below.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/tre.h"
#include "ec/curve.h"
#include "hashing/drbg.h"
#include "pairing/pairing.h"

namespace {

using namespace tre;

struct SchemeFixture {
  core::TreScheme scheme{params::load("tre-512")};
  hashing::HmacDrbg rng{to_bytes("bench-tre-ops")};
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  core::KeyUpdate update = scheme.issue_update(server, "2030-01-01T00:00:00Z");
  Bytes msg = rng.bytes(256);
  core::Ciphertext ct =
      scheme.encrypt(msg, user.pub, server.pub, "2030-01-01T00:00:00Z", rng);
};

SchemeFixture& fx() {
  static SchemeFixture f;
  return f;
}

void BM_ServerKeygen(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) benchmark::DoNotOptimize(f.scheme.server_keygen(f.rng));
}
BENCHMARK(BM_ServerKeygen)->Unit(benchmark::kMillisecond);

void BM_UserKeygen(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) benchmark::DoNotOptimize(f.scheme.user_keygen(f.server.pub, f.rng));
}
BENCHMARK(BM_UserKeygen)->Unit(benchmark::kMillisecond);

void BM_VerifyUserKey(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.verify_user_public_key(f.server.pub, f.user.pub));
  }
}
BENCHMARK(BM_VerifyUserKey)->Unit(benchmark::kMillisecond);

void BM_IssueUpdate(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.issue_update(f.server, "2030-01-01T00:00:00Z"));
  }
}
BENCHMARK(BM_IssueUpdate)->Unit(benchmark::kMillisecond);

void BM_VerifyUpdate(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.verify_update(f.server.pub, f.update));
  }
}
BENCHMARK(BM_VerifyUpdate)->Unit(benchmark::kMillisecond);

void BM_EncryptWithKeyCheck(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.encrypt(f.msg, f.user.pub, f.server.pub,
                                              "2030-01-01T00:00:00Z", f.rng,
                                              core::KeyCheck::kVerify));
  }
}
BENCHMARK(BM_EncryptWithKeyCheck)->Unit(benchmark::kMillisecond);

void BM_EncryptKeyPrechecked(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.encrypt(f.msg, f.user.pub, f.server.pub,
                                              "2030-01-01T00:00:00Z", f.rng,
                                              core::KeyCheck::kSkip));
  }
}
BENCHMARK(BM_EncryptKeyPrechecked)->Unit(benchmark::kMillisecond);

void BM_Decrypt(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt(f.ct, f.user.a, f.update));
  }
}
BENCHMARK(BM_Decrypt)->Unit(benchmark::kMillisecond);

void BM_DeriveEpochKey(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.derive_epoch_key(f.user.a, f.update));
  }
}
BENCHMARK(BM_DeriveEpochKey)->Unit(benchmark::kMillisecond);

void BM_DecryptWithEpochKey(benchmark::State& state) {
  auto& f = fx();
  core::EpochKey ek = f.scheme.derive_epoch_key(f.user.a, f.update);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.decrypt_with_epoch_key(f.ct, ek));
  }
}
BENCHMARK(BM_DecryptWithEpochKey)->Unit(benchmark::kMillisecond);

void BM_RebindUserKey(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.rebind_user_key(f.user.a, f.server.pub));
  }
}
BENCHMARK(BM_RebindUserKey)->Unit(benchmark::kMillisecond);

void BM_VerifyReboundKey(benchmark::State& state) {
  auto& f = fx();
  core::UserPublicKey rebound = f.scheme.rebind_user_key(f.user.a, f.server.pub);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme.verify_rebound_key(f.user.pub.ag, f.server.pub.g,
                                                         f.server.pub, rebound));
  }
}
BENCHMARK(BM_VerifyReboundKey)->Unit(benchmark::kMillisecond);

// --- Before/after engine comparison ------------------------------------------

/// Steady-state ops/second of `op` (warmed up once; runs >= min_ms).
double ops_per_sec(const std::function<void()>& op, double min_ms = 250.0) {
  op();  // warm-up: populates scheme caches, faults in tables
  auto start = std::chrono::steady_clock::now();
  int iters = 0;
  double elapsed_ms = 0;
  do {
    op();
    ++iters;
    elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  } while (elapsed_ms < min_ms);
  return iters * 1000.0 / elapsed_ms;
}

struct Row {
  const char* name;
  double before_ops;
  double after_ops;
};

int run_comparison(const std::string& json_path) {
  auto params = params::load("tre-512");
  core::TreScheme fast(params, core::Tuning::fast());
  core::TreScheme legacy(params, core::Tuning::legacy());
  hashing::HmacDrbg rng(to_bytes("bench-compare"));
  const char* tag = "2030-01-01T00:00:00Z";

  core::ServerKeyPair server = legacy.server_keygen(rng);
  core::UserKeyPair user = legacy.user_keygen(server.pub, rng);
  core::KeyUpdate update = legacy.issue_update(server, tag);

  // Scalars cycled through the primitive benchmarks so no iteration
  // repeats its predecessor's input exactly.
  std::vector<field::FpInt> scalars;
  for (int i = 0; i < 16; ++i) scalars.push_back(params::random_scalar(*params, rng));
  size_t si = 0;
  auto next_scalar = [&]() -> const field::FpInt& {
    return scalars[si++ % scalars.size()];
  };

  std::vector<Row> rows;

  // Primitive: fixed-base scalar multiplication (wNAF vs comb).
  {
    ec::G1Precomp comb(server.pub.g);
    double before = ops_per_sec([&] { server.pub.g.mul(next_scalar()); });
    double after = ops_per_sec([&] { comb.mul_secret(next_scalar()); });
    rows.push_back({"fixed_base_mul", before, after});
  }

  // Primitive: G_T exponentiation (binary vs unitary wNAF).
  {
    core::Gt k = pairing::pair(user.pub.asg, fast.hash_tag(tag));
    double before = ops_per_sec([&] { k.pow_binary(next_scalar()); });
    double after = ops_per_sec([&] { k.pow_unitary(next_scalar()); });
    rows.push_back({"gt_pow", before, after});
  }

  // Protocol operations, legacy vs fast tuning (steady state: the fast
  // scheme's tag/key/pairing caches are warm, which is the operating
  // point the engine is designed for).
  Bytes msg = rng.bytes(256);
  rows.push_back({"encrypt",
                  ops_per_sec([&] { legacy.encrypt(msg, user.pub, server.pub, tag, rng); }),
                  ops_per_sec([&] { fast.encrypt(msg, user.pub, server.pub, tag, rng); })});
  core::Ciphertext ct = fast.encrypt(msg, user.pub, server.pub, tag, rng);
  rows.push_back({"decrypt",
                  ops_per_sec([&] { legacy.decrypt(ct, user.a, update); }),
                  ops_per_sec([&] { fast.decrypt(ct, user.a, update); })});
  rows.push_back({"issue_update",
                  ops_per_sec([&] { legacy.issue_update(server, tag); }),
                  ops_per_sec([&] { fast.issue_update(server, tag); })});

  // Batch: 1000 messages under one tag vs what 1000 sequential calls to
  // the pre-engine (legacy) encrypt cost. The sequential side is sampled
  // (kSeqSample calls) — each call is identical work, so ops/s is flat.
  constexpr size_t kBatch = 1000;
  constexpr int kSeqSample = 25;
  double seq_ops, batch_ops;
  {
    std::vector<Bytes> msgs(kBatch, msg);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSeqSample; ++i) {
      legacy.encrypt(msgs[0], user.pub, server.pub, tag, rng, core::KeyCheck::kVerify);
    }
    double seq_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    seq_ops = kSeqSample * 1000.0 / seq_ms;

    fast.encrypt(msgs[0], user.pub, server.pub, tag, rng);  // warm caches
    start = std::chrono::steady_clock::now();
    std::vector<core::Ciphertext> out =
        fast.encrypt_batch(msgs, user.pub, server.pub, tag, rng);
    double batch_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    batch_ops = static_cast<double>(out.size()) * 1000.0 / batch_ms;
    rows.push_back({"encrypt_batch_1000", seq_ops, batch_ops});
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"params\": \"tre-512\",\n  \"unit\": \"ops_per_sec\",\n");
  std::fprintf(f, "  \"batch_size\": %zu,\n  \"sequential_sample\": %d,\n",
               kBatch, kSeqSample);
  std::fprintf(f, "  \"results\": {\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"before\": %.3f, \"after\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 rows[i].name, rows[i].before_ops, rows[i].after_ops,
                 rows[i].after_ops / rows[i].before_ops,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "%s\n}\n", tre::bench::metrics_json_field(2).c_str());
  std::fclose(f);

  std::printf("%-20s | %12s | %12s | %8s\n", "operation", "before op/s",
              "after op/s", "speedup");
  std::printf("---------------------+--------------+--------------+---------\n");
  for (const Row& r : rows) {
    std::printf("%-20s | %12.2f | %12.2f | %7.2fx\n", r.name, r.before_ops,
                r.after_ops, r.after_ops / r.before_ops);
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
    int gargc = argc - 1;
    std::vector<char*> gargv(argv, argv + argc);
    gargv.erase(gargv.begin() + 1);  // drop --gbench, keep benchmark flags
    benchmark::Initialize(&gargc, gargv.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::string json_path = argc > 1 ? argv[1] : "BENCH_tre_ops.json";
  return run_comparison(json_path);
}
