// E2: TRE vs the generic hybrid PKE+IBE composition (footnote 3) vs
// ID-TRE. Checks the paper's §1 claim: "Our schemes could have 50%
// reduction in most cases" in computation and/or ciphertext size.
#include <cstdio>

#include "baselines/hybrid.h"
#include "bench_util.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "idtre/idtre.h"

int main() {
  using namespace tre;
  bench::header("E2: TRE vs hybrid PKE+IBE vs ID-TRE (tre-512)",
                "TRE ~50% cheaper than the hybrid composition in asymmetric "
                "ciphertext overhead and decryption cost (paper §1)");

  auto params = params::load("tre-512");
  core::TreScheme tre_scheme(params);
  baselines::HybridTre hybrid(params);
  idtre::IdTreScheme id_scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-e2"));

  core::ServerKeyPair server = tre_scheme.server_keygen(rng);
  core::UserKeyPair user = tre_scheme.user_keygen(server.pub, rng);
  baselines::PkeKeyPair pke_user = hybrid.pke_keygen(rng);
  idtre::IdPrivateKey id_user = id_scheme.extract(server, "receiver@example.org");
  const char* tag = "2030-01-01T00:00:00Z";
  core::KeyUpdate update = tre_scheme.issue_update(server, tag);

  const int reps = 20;
  std::printf("%-8s | %-22s | %10s | %10s | %10s\n", "msg", "scheme", "enc ms",
              "dec ms", "ct bytes");
  std::printf("---------+------------------------+------------+------------+------------\n");

  for (size_t msg_size : {32u, 256u, 4096u, 65535u}) {
    Bytes msg = rng.bytes(msg_size);

    auto tre_ct = tre_scheme.encrypt(msg, user.pub, server.pub, tag, rng,
                                     core::KeyCheck::kSkip);
    double tre_enc = bench::time_ms(reps, [&] {
      (void)tre_scheme.encrypt(msg, user.pub, server.pub, tag, rng,
                               core::KeyCheck::kSkip);
    });
    double tre_dec =
        bench::time_ms(reps, [&] { (void)tre_scheme.decrypt(tre_ct, user.a, update); });
    std::printf("%-8zu | %-22s | %10.2f | %10.2f | %10zu\n", msg_size,
                "TRE (this paper)", tre_enc, tre_dec, tre_ct.to_bytes().size());

    auto hyb_ct = hybrid.encrypt(msg, pke_user, server.pub, tag, rng);
    double hyb_enc = bench::time_ms(
        reps, [&] { (void)hybrid.encrypt(msg, pke_user, server.pub, tag, rng); });
    double hyb_dec =
        bench::time_ms(reps, [&] { (void)hybrid.decrypt(hyb_ct, pke_user.b, update); });
    std::printf("%-8zu | %-22s | %10.2f | %10.2f | %10zu\n", msg_size,
                "hybrid PKE+IBE", hyb_enc, hyb_dec, hyb_ct.to_bytes().size());

    auto id_ct = id_scheme.encrypt(msg, "receiver@example.org", server.pub, tag, rng);
    double id_enc = bench::time_ms(reps, [&] {
      (void)id_scheme.encrypt(msg, "receiver@example.org", server.pub, tag, rng);
    });
    double id_dec =
        bench::time_ms(reps, [&] { (void)id_scheme.decrypt(id_ct, id_user, update); });
    std::printf("%-8zu | %-22s | %10.2f | %10.2f | %10zu\n", msg_size,
                "ID-TRE (escrowed)", id_enc, id_dec, id_ct.to_bytes().size());

    // Headline ratios for the fixed asymmetric part.
    size_t point = params->g1_compressed_bytes();
    size_t tre_overhead = tre_ct.to_bytes().size() - msg_size;
    size_t hyb_overhead = hyb_ct.to_bytes().size() - msg_size;
    std::printf("%-8s   asym overhead: TRE %zuB (1 point) vs hybrid %zuB (2 points)"
                " -> %.0f%% saved; dec: %.0f%% saved\n",
                "", tre_overhead, hyb_overhead,
                100.0 * (1.0 - static_cast<double>(tre_overhead) /
                                   static_cast<double>(hyb_overhead)),
                100.0 * (1.0 - tre_dec / hyb_dec));
    (void)point;
  }
  return 0;
}
