// E20 — the midnight storm: tred under thousands of simultaneous
// receivers.
//
// The paper's scalability argument (§4) is that a passive server's
// per-receiver cost is zero — everyone wants the SAME update at the
// release instant, so serving is pure fan-out of one byte string. This
// harness stages that instant against the real daemon: a fleet of
// closed-loop clients (nonblocking sockets, single generator thread)
// ramps up in batches, then hammers kGetUpdate for a fixed window while
// we record connection-establishment rate, request throughput, and
// request latency percentiles end to end through the framed protocol.
//
//   bench_daemon [--smoke] [--conns N] [--seconds S] [--json PATH]
//
// --smoke is the CI leg: fewer seconds, but still >= 1024 concurrent
// connections — the concurrency claim is the point, so it is never
// scaled away. Exit is nonzero when any connection fails, any reply
// mismatches the genuine update bytes, or peak concurrency misses the
// target.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/tre.h"
#include "daemon/daemon.h"
#include "daemon/frame.h"
#include "daemon/store.h"
#include "hashing/drbg.h"
#include "params/params.h"

namespace {

using namespace tre;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One storm client: a nonblocking socket running connect -> (request ->
// reply)* until the window closes. The generator thread multiplexes all
// of them through one poll set — the daemon must not be able to tell
// this apart from distinct receivers, and at the socket level it cannot.
struct Client {
  enum class State { kConnecting, kSending, kReading, kDone, kFailed };
  int fd = -1;
  State state = State::kConnecting;
  daemon::FrameReader reader{daemon::kMaxPayload};
  Bytes out;
  size_t out_off = 0;
  std::int64_t sent_at_ns = 0;
  std::uint64_t completed = 0;
  int retries = 0;  ///< connect attempts burned (transient SYN-burst drops)
};

struct StormResult {
  size_t target_conns = 0;
  size_t established = 0;
  size_t failed = 0;
  size_t peak_open = 0;
  double ramp_seconds = 0;
  double storm_seconds = 0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
  double conns_per_sec = 0;
  double rps = 0;
  double p50_ms = 0, p99_ms = 0, max_ms = 0;
};

int make_nonblock_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Runs the whole storm against 127.0.0.1:port. Single thread, one poll
/// set; kRampBatch bounds outstanding (un-ACKed) connects so the SYN
/// burst stays inside the daemon's listen backlog.
StormResult run_storm(std::uint16_t port, size_t target_conns,
                      double storm_seconds, const Bytes& request_wire,
                      const Bytes& expected_reply) {
  constexpr size_t kRampBatch = 256;
  constexpr int kConnectRetries = 8;  // loopback SYN bursts drop a few
  StormResult res;
  res.target_conns = target_conns;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  std::vector<Client> clients(target_conns);
  std::vector<pollfd> pfds;
  std::vector<std::int64_t> latencies_ns;
  latencies_ns.reserve(1 << 20);

  size_t started = 0, connecting = 0, open_now = 0;
  const std::int64_t ramp_start = now_ns();
  std::int64_t storm_start = 0;   // set when the last connect lands
  std::int64_t deadline_ns = 0;
  bool window_open = true;

  auto start_request = [&](Client& c) {
    c.out = request_wire;
    c.out_off = 0;
    c.sent_at_ns = now_ns();
    c.state = Client::State::kSending;
  };

  // 0 = connected synchronously, 1 = in progress, -1 = hard failure.
  auto try_connect = [&](Client& c) -> int {
    c.fd = make_nonblock_socket();
    if (c.fd < 0) return -1;
    if (::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return 0;
    if (errno == EINPROGRESS) return 1;
    ::close(c.fd);
    c.fd = -1;
    return -1;
  };

  auto fail = [&](Client& c) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
    if (c.state == Client::State::kConnecting) --connecting;
    else --open_now;
    c.state = Client::State::kFailed;
    ++res.failed;
  };

  while (true) {
    // Ramp: keep kRampBatch connects in flight until the fleet is full.
    while (started < target_conns && connecting < kRampBatch) {
      Client& c = clients[started];
      int rc = try_connect(c);
      while (rc < 0 && ++c.retries <= kConnectRetries) rc = try_connect(c);
      if (rc == 0) {
        start_request(c);
        ++open_now;
      } else if (rc == 1) {
        c.state = Client::State::kConnecting;
        ++connecting;
      } else {
        c.state = Client::State::kFailed;
        ++res.failed;
      }
      ++started;
    }
    res.peak_open = std::max(res.peak_open, open_now);

    if (storm_start == 0 && started == target_conns && connecting == 0) {
      storm_start = now_ns();
      res.ramp_seconds = double(storm_start - ramp_start) / 1e9;
      deadline_ns = storm_start +
                    std::int64_t(storm_seconds * 1e9);
    }
    if (storm_start != 0 && window_open && now_ns() >= deadline_ns) {
      window_open = false;  // stop issuing; drain in-flight replies
    }

    pfds.clear();
    size_t live = 0;
    for (Client& c : clients) {
      if (c.fd < 0) continue;
      short ev = 0;
      if (c.state == Client::State::kConnecting) ev = POLLOUT;
      else if (c.state == Client::State::kSending) ev = POLLOUT;
      else if (c.state == Client::State::kReading) ev = POLLIN;
      else continue;  // kDone: parked, holding its connection open
      pfds.push_back({c.fd, ev, 0});
      ++live;
    }
    if (live == 0) {
      if (storm_start != 0 && !window_open) break;  // drained
      if (started == target_conns && open_now == 0) break;  // all failed
    }
    if (!pfds.empty()) {
      (void)::poll(pfds.data(), pfds.size(), 100);
    }

    size_t pi = 0;
    for (Client& c : clients) {
      if (c.fd < 0 || c.state == Client::State::kDone) continue;
      if (pi >= pfds.size() || pfds[pi].fd != c.fd) continue;
      short re = pfds[pi++].revents;
      if (re == 0) continue;
      if (c.state == Client::State::kConnecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0 && (re & POLLOUT)) {
          --connecting;
          ++open_now;
          start_request(c);
          continue;
        }
        // Dropped during the burst (RST, queue overflow): fresh socket.
        ::close(c.fd);
        c.fd = -1;
        int rc = -1;
        while (rc < 0 && ++c.retries <= kConnectRetries) rc = try_connect(c);
        if (rc == 0) {
          --connecting;
          ++open_now;
          start_request(c);
        } else if (rc < 0) {
          --connecting;
          c.state = Client::State::kFailed;
          ++res.failed;
        }  // rc == 1: still kConnecting; the in-flight count is unchanged
        continue;
      }
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        fail(c);
        continue;
      }
      if (c.state == Client::State::kSending && (re & POLLOUT)) {
        ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                           c.out.size() - c.out_off, MSG_NOSIGNAL);
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          fail(c);
          continue;
        }
        if (n > 0) c.out_off += size_t(n);
        if (c.out_off == c.out.size()) c.state = Client::State::kReading;
        continue;
      }
      if (c.state == Client::State::kReading && (re & POLLIN)) {
        std::uint8_t buf[16384];
        ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
          fail(c);
          continue;
        }
        c.reader.feed(ByteSpan(buf, size_t(n)));
        if (c.reader.broken()) {
          fail(c);
          continue;
        }
        if (auto f = c.reader.next()) {
          ++res.requests;
          ++c.completed;
          latencies_ns.push_back(now_ns() - c.sent_at_ns);
          if (f->type != daemon::FrameType::kUpdateReply ||
              f->payload != expected_reply) {
            ++res.mismatches;
          }
          if (window_open) {
            start_request(c);
          } else {
            c.state = Client::State::kDone;  // hold the conn, stop asking
          }
        }
      }
    }
  }

  // Count connects that completed synchronously during the ramp.
  res.established = 0;
  for (const Client& c : clients) {
    if (c.state != Client::State::kFailed) ++res.established;
    if (c.fd >= 0) ::close(c.fd);
  }

  res.storm_seconds =
      storm_start == 0 ? 0 : double(now_ns() - storm_start) / 1e9;
  res.conns_per_sec =
      res.ramp_seconds > 0 ? double(res.established) / res.ramp_seconds : 0;
  res.rps = res.storm_seconds > 0 ? double(res.requests) / res.storm_seconds : 0;
  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    res.p50_ms = double(latencies_ns[latencies_ns.size() / 2]) / 1e6;
    res.p99_ms = double(latencies_ns[latencies_ns.size() * 99 / 100]) / 1e6;
    res.max_ms = double(latencies_ns.back()) / 1e6;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t conns = 1200;
  double seconds = 5.0;
  std::string json_path = "BENCH_daemon.json";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
      conns = 1024;
      seconds = 2.0;
    } else if (a == "--conns" && i + 1 < argc) {
      conns = size_t(std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "--seconds" && i + 1 < argc) {
      seconds = std::strtod(argv[++i], nullptr);
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_daemon [--smoke] [--conns N] [--seconds S] "
                   "[--json PATH]\n");
      return 2;
    }
  }

  bench::header("E20: tred under the midnight storm",
                "passive-server fan-out is flat per receiver: thousands of "
                "concurrent connections fetch the release-instant update at "
                "interactive latency from one event-loop thread");

  // One genuine update — the exact bytes every receiver wants at the
  // release instant. Toy parameters: the daemon never touches the group
  // elements, so payload size is the only thing the curve changes here.
  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("bench-daemon-rng"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  const std::string tag = "2005-06-06T09:00:00Z";
  core::KeyUpdate genuine = scheme.issue_update(server, tag);
  const Bytes update_wire = genuine.to_bytes();

  auto store = std::make_shared<daemon::Store>();
  store->set_server_key("tre-toy-96", server.pub.to_bytes());
  if (!store->put(tag, update_wire).ok()) {
    std::fprintf(stderr, "bench_daemon: store.put failed\n");
    return 1;
  }

  daemon::DaemonConfig cfg;
  cfg.max_conns = conns + 64;  // headroom: the storm itself must not shed
  // The whole fleet can pile into the accept queue before the (single
  // shared core) daemon thread gets a slice: size the backlog for it.
  cfg.listen_backlog = static_cast<int>(conns) + 256;
  daemon::Daemon d(store, cfg);
  std::thread daemon_thread([&] { d.run(); });

  const Bytes request_wire =
      daemon::encode_frame(daemon::FrameType::kGetUpdate, to_bytes(tag));
  StormResult r =
      run_storm(d.port(), conns, seconds, request_wire, update_wire);

  d.stop();
  daemon_thread.join();
  daemon::Daemon::Stats ds = d.stats();

  std::printf("fleet                : %zu clients (%s)\n", r.target_conns,
              smoke ? "smoke" : "full");
  std::printf("established          : %zu  (peak open %zu, failed %zu)\n",
              r.established, r.peak_open, r.failed);
  std::printf("ramp                 : %.3f s  (%.0f conns/s)\n",
              r.ramp_seconds, r.conns_per_sec);
  std::printf("storm window         : %.2f s\n", r.storm_seconds);
  std::printf("requests served      : %llu  (%.0f req/s)\n",
              static_cast<unsigned long long>(r.requests), r.rps);
  std::printf("latency p50/p99/max  : %.3f / %.3f / %.3f ms\n", r.p50_ms,
              r.p99_ms, r.max_ms);
  std::printf("payload mismatches   : %llu (must be 0)\n",
              static_cast<unsigned long long>(r.mismatches));
  std::printf("daemon: accepted %llu, requests %llu, shed %llu, bad %llu\n",
              static_cast<unsigned long long>(ds.accepted),
              static_cast<unsigned long long>(ds.requests),
              static_cast<unsigned long long>(ds.shed),
              static_cast<unsigned long long>(ds.bad_frames));

  const bool ok = r.failed == 0 && r.mismatches == 0 &&
                  r.peak_open >= r.target_conns && ds.shed == 0 &&
                  r.requests > 0;

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"experiment\": \"E20_daemon_midnight_storm\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"params\": \"tre-toy-96\",\n");
    std::fprintf(f, "  \"update_wire_bytes\": %zu,\n", update_wire.size());
    std::fprintf(f, "  \"target_conns\": %zu,\n", r.target_conns);
    std::fprintf(f, "  \"established\": %zu,\n", r.established);
    std::fprintf(f, "  \"peak_open\": %zu,\n", r.peak_open);
    std::fprintf(f, "  \"failed_conns\": %zu,\n", r.failed);
    std::fprintf(f, "  \"ramp_seconds\": %.4f,\n", r.ramp_seconds);
    std::fprintf(f, "  \"conns_per_sec\": %.1f,\n", r.conns_per_sec);
    std::fprintf(f, "  \"storm_seconds\": %.3f,\n", r.storm_seconds);
    std::fprintf(f, "  \"requests\": %llu,\n",
                 static_cast<unsigned long long>(r.requests));
    std::fprintf(f, "  \"requests_per_sec\": %.1f,\n", r.rps);
    std::fprintf(f, "  \"latency_ms\": {\"p50\": %.4f, \"p99\": %.4f, "
                 "\"max\": %.4f},\n",
                 r.p50_ms, r.p99_ms, r.max_ms);
    std::fprintf(f, "  \"payload_mismatches\": %llu,\n",
                 static_cast<unsigned long long>(r.mismatches));
    std::fprintf(f, "  \"daemon\": {\"accepted\": %llu, \"requests\": %llu, "
                 "\"shed\": %llu, \"bad_frames\": %llu},\n",
                 static_cast<unsigned long long>(ds.accepted),
                 static_cast<unsigned long long>(ds.requests),
                 static_cast<unsigned long long>(ds.shed),
                 static_cast<unsigned long long>(ds.bad_frames));
    std::fprintf(f, "  \"clean\": %s,\n", ok ? "true" : "false");
    std::fprintf(f, "%s\n}\n", bench::metrics_json_field(2).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) {
    std::fprintf(stderr, "bench_daemon: FAILED acceptance gates\n");
    return 1;
  }
  return 0;
}
