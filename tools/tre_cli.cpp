// tre_cli — command-line front end for the timed-release library.
//
//   tre_cli params
//   tre_cli server-keygen --set tre-512 --key server.key --pub server.pub
//   tre_cli server-keygen --backend bls381 --key server.key --pub server.pub
//   tre_cli user-keygen   --server-pub server.pub --key user.key --pub user.pub
//   tre_cli issue         --server-key server.key [--password PW] --tag 2030-01-01T00:00:00Z --out update.bin
//   tre_cli verify-update --server-pub server.pub --update update.bin
//   tre_cli encrypt       --user-pub user.pub --server-pub server.pub \
//                         --tag 2030-01-01T00:00:00Z --in msg.txt --out ct.bin [--mode basic|fo|react]
//   tre_cli decrypt       --user-key user.key --server-pub server.pub \
//                         --update update.bin --in ct.bin --out msg.txt [--mode basic|fo|react]
//
// Files are self-describing: a 4-byte magic, a type byte, the parameter
// set name, then the payload, so mixing parameter sets or file kinds is
// caught before any cryptography runs.
//
// Backends: every command body is ONE template over the pairing backend.
// `--backend {tre512,bls381}` picks the curve at server-keygen time
// ("bls381" maps to the reserved set name "bls12-381"); downstream
// commands dispatch on the set name baked into their input files, so keys
// made on either curve flow through issue/encrypt/decrypt unchanged.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <csignal>
#include <ctime>
#include <fstream>
#include <optional>
#include <string>
#include <tuple>

#include "bls12/tre381.h"
#include "client/fetcher.h"
#include "client/socket_transport.h"
#include "common/health.h"
#include "core/tre.h"
#include "daemon/daemon.h"
#include "hashing/drbg.h"
#include "keystore/keystore.h"
#include "obs/metrics.h"
#include "selftest/selftest.h"
#include "threshold/dkg.h"
#include "threshold/threshold.h"
#include "timelock/hybrid.h"
#include "timelock/solver.h"
#include "timeserver/round.h"
#include "cli_common.h"

namespace {

using namespace tre;
using cli::Args;
using cli::Envelope;
using cli::FileKind;
using cli::kBls381Set;
using cli::parse_envelope;
using cli::parse_u64;
using cli::read_envelope;
using cli::read_file;
using cli::write_envelope;
using cli::write_file;

// Reads a secret-key file, opening the keystore seal when present.
Envelope read_secret(const std::string& path, FileKind plain_kind,
                     FileKind sealed_kind, const std::string& password) {
  Envelope env = parse_envelope(path);
  if (env.kind == plain_kind) return env;
  require(env.kind == sealed_kind, "wrong file kind for this option");
  require(!password.empty(), "this key file is password-protected: pass --password");
  auto opened = keystore::open(env.payload, password);
  require(opened.has_value(), "wrong password or corrupted key file");
  env.payload = std::move(*opened);
  env.kind = plain_kind;
  return env;
}

// Release addressing: --tag takes a literal tag string, --round N the
// tlock-shaped round envelope (tag = "round:<N>", timeserver/round.h).
std::string tag_arg(const Args& args) {
  if (args.has("round")) {
    require(!args.has("tag"), "give --tag or --round, not both");
    return server::round_tag(cli::parse_u64(args.get("round"), "--round"));
  }
  return args.get("tag");
}

// Writes a secret-key file, sealed under `password` when one is given.
void write_secret(const std::string& path, FileKind plain_kind, FileKind sealed_kind,
                  const std::string& set_name, ByteSpan payload,
                  const std::string& password, tre::hashing::RandomSource& rng) {
  if (password.empty()) {
    write_envelope(path, plain_kind, set_name, payload);
  } else {
    write_envelope(path, sealed_kind, set_name,
                   keystore::seal(payload, password, rng));
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: tre_cli <command> [--opt value ...]\n"
               "  params\n"
               "  server-keygen --set NAME --key FILE --pub FILE [--password PW]\n"
               "                [--backend tre512|bls381]\n"
               "  user-keygen   --server-pub FILE --key FILE --pub FILE [--password PW]\n"
               "  issue         --server-key FILE --tag T --out FILE\n"
               "  verify-update --server-pub FILE --update FILE\n"
               "  encrypt       --user-pub FILE --server-pub FILE --tag T\n"
               "                --in FILE --out FILE [--mode basic|fo|react|sealed[-basic|-fo|-react]]\n"
               "                [--fallback W [--fallback-modulus-bits N]]\n"
               "                (--fallback W adds a time-lock lane: W sequential\n"
               "                 squarings open the ciphertext without the server)\n"
               "  decrypt       --user-key FILE --server-pub FILE --update FILE\n"
               "                --in FILE --out FILE [--mode basic|fo|react]\n"
               "                (sealed/hybrid ciphertexts self-describe; no --mode needed)\n"
               "  solve         --in FILE --out FILE [--checkpoint FILE] [--budget N]\n"
               "                [--checkpoint-every N]\n"
               "                grind a hybrid ciphertext's time-lock lane; exit 3 when\n"
               "                the budget runs out (resume later from --checkpoint)\n"
               "  selftest      run the power-on KAT suite and report per-KAT results\n"
               "                (TRE_SELFTEST_FAULT=<kat> injects a corruption)\n"
               "  threshold-setup --n N --t K --out-prefix P [--password PW]\n"
               "                [--backend tre512|bls381] [--set NAME] [--dealer 1]\n"
               "                t-of-n beacon setup via Pedersen-style DKG (or a\n"
               "                trusted dealer with --dealer 1): writes P.tkey (public\n"
               "                threshold key), P.pub (the group key as an ORDINARY\n"
               "                server-pub — encrypt binds to it unchanged) and\n"
               "                P-share-i.key for i = 1..N\n"
               "  issue-partial --share FILE --tkey FILE (--tag T | --round N)\n"
               "                --out FILE [--password PW]\n"
               "                one beacon node's partial update s_i*H1(T)\n"
               "  serve         --pub FILE [--updates F1,F2,...] [--partials F1,F2,...]\n"
               "                [--server-key FILE --tags T1,T2,... [--password PW]]\n"
               "                [--bind ADDR] [--port N] [--port-file FILE]\n"
               "                [--max-conns N] [--idle-timeout-ms N]\n"
               "                serve artifacts over tred's framed TCP protocol;\n"
               "                --tags issues on the fly but REFUSES instants still\n"
               "                in the future (the server must never pre-disclose)\n"
               "  fetch         --remote HOST:PORT[,HOST:PORT...] --server-pub FILE\n"
               "                --tag T --out FILE [--timeout-ms N] [--attempts N]\n"
               "                fetch a key update from remote daemon(s) through the\n"
               "                full Byzantine trust gate (parse/tag/pairing check)\n"
               "           or:  --from T --to T --out-dir DIR [--page N]\n"
               "                catch-up: page the archive via kGetRange and verify\n"
               "                each page as ONE randomized batch (forged items are\n"
               "                bisected out); writes one envelope per update\n"
               "           or:  --threshold K --tkey FILE --remote ... (--tag T |\n"
               "                --round N) --out FILE\n"
               "                collect >= K partials across the endpoints, batch-\n"
               "                verify with Byzantine attribution, and Lagrange-\n"
               "                aggregate into the ordinary (verified) update\n"
               "  any command   [--metrics FILE]  dump the obs registry as JSON\n"
               "                (FILE = '-' for stdout)\n"
               "  downstream commands infer the backend from their input files;\n"
               "  an explicit --backend must then match the files\n");
  return 2;
}

std::shared_ptr<const params::GdhParams> load_set(const std::string& name) {
  require(name != kBls381Set, "internal: bls12-381 files take the 381 path");
  return params::load(name);
}

// An optional --backend on a file-driven command is a cross-check, not a
// selector: the file's set name is authoritative.
void check_backend_flag(const Args& args, const std::string& set_name) {
  std::string b = args.get_or("backend", "");
  if (b.empty()) return;
  require(b == "tre512" || b == "bls381", "unknown --backend (use tre512 or bls381)");
  require((b == "bls381") == (set_name == kBls381Set),
          "--backend does not match the backend of the input files");
}

int cmd_params() {
  for (const auto& name : params::available()) {
    auto p = params::load(name);
    std::printf("%-12s q=%zu bits  p=%zu bits  update=%zu bytes\n", name.c_str(),
                p->group_order().bit_length(), p->curve->p.bit_length(),
                p->g1_compressed_bytes());
  }
  auto ctx = bls12::Bls12Ctx::get();
  std::printf("%-12s q=%zu bits  p=%zu bits  update=%zu bytes  (--backend bls381)\n",
              kBls381Set, ctx->r().bit_length(), ctx->p().bit_length(),
              bls12::Bls381Backend::gu_wire_bytes(*ctx));
  return 0;
}

// ---- backend-generic command bodies -----------------------------------
// Each body exists once; the dispatchers below instantiate it for the
// type-1 curve and BLS12-381.

// Secret-key payloads: scalar || public part.
template <class B>
Bytes keypair_payload(const typename B::Params& p, const core::Scalar& secret,
                      ByteSpan pub) {
  Bytes out = secret.to_bytes_be(B::scalar_bytes(p));
  out.insert(out.end(), pub.begin(), pub.end());
  return out;
}

template <class B>
int cmd_server_keygen_g(std::shared_ptr<const typename B::Params> p,
                        const std::string& set_name, const Args& args) {
  core::BasicTreScheme<B> scheme(p);
  hashing::SystemRandom rng;
  core::BasicServerKeyPair<B> keys = scheme.server_keygen(rng);
  write_secret(args.get("key"), FileKind::kServerKey, FileKind::kServerKeySealed,
               set_name, keypair_payload<B>(*p, keys.s, keys.pub.to_bytes()),
               args.get_or("password", ""), rng);
  write_envelope(args.get("pub"), FileKind::kServerPub, set_name, keys.pub.to_bytes());
  std::printf("server key pair written (%s)\n", set_name.c_str());
  return 0;
}

template <class B>
int cmd_user_keygen_g(std::shared_ptr<const typename B::Params> p,
                      const std::string& set_name, const Envelope& server_env,
                      const Args& args) {
  core::BasicServerPublicKey<B> server =
      core::BasicServerPublicKey<B>::from_bytes(*p, server_env.payload);
  core::BasicTreScheme<B> scheme(p);
  hashing::SystemRandom rng;
  core::BasicUserKeyPair<B> keys = scheme.user_keygen(server, rng);
  write_secret(args.get("key"), FileKind::kUserKey, FileKind::kUserKeySealed, set_name,
               keypair_payload<B>(*p, keys.a, keys.pub.to_bytes()),
               args.get_or("password", ""), rng);
  write_envelope(args.get("pub"), FileKind::kUserPub, set_name, keys.pub.to_bytes());
  std::printf("user key pair written, bound to the server key (%s)\n", set_name.c_str());
  return 0;
}

template <class B>
int cmd_issue_g(std::shared_ptr<const typename B::Params> p,
                const std::string& set_name, const Envelope& env, const Args& args) {
  core::BasicTreScheme<B> scheme(p);
  size_t sw = B::scalar_bytes(*p);
  require(env.payload.size() > sw, "corrupt server key file");
  core::Scalar s = core::Scalar::from_bytes_be(ByteSpan(env.payload.data(), sw));
  core::BasicServerPublicKey<B> pub = core::BasicServerPublicKey<B>::from_bytes(
      *p, ByteSpan(env.payload.data() + sw, env.payload.size() - sw));
  core::BasicKeyUpdate<B> upd =
      scheme.issue_update(core::BasicServerKeyPair<B>{s, pub}, tag_arg(args));
  write_envelope(args.get("out"), FileKind::kUpdate, set_name, upd.to_bytes());
  std::printf("update issued for \"%s\" (%zu bytes)\n", upd.tag.c_str(),
              upd.to_bytes().size());
  return 0;
}

template <class B>
int cmd_verify_update_g(std::shared_ptr<const typename B::Params> p,
                        const std::string& set_name, const Envelope& server_env,
                        const Args& args) {
  core::BasicServerPublicKey<B> server =
      core::BasicServerPublicKey<B>::from_bytes(*p, server_env.payload);
  Envelope env = read_envelope(args.get("update"), FileKind::kUpdate);
  require(env.set_name == set_name, "update and server key use different parameter sets");
  core::BasicTreScheme<B> scheme(p);
  core::BasicKeyUpdate<B> upd = core::BasicKeyUpdate<B>::from_bytes(*p, env.payload);
  bool ok = scheme.verify_update(server, upd);
  std::printf("update for \"%s\": %s\n", upd.tag.c_str(), ok ? "VALID" : "INVALID");
  return ok ? 0 : 1;
}

FileKind ct_kind(const std::string& mode) {
  if (mode == "basic") return FileKind::kCiphertextBasic;
  if (mode == "fo") return FileKind::kCiphertextFo;
  if (mode == "react") return FileKind::kCiphertextReact;
  throw Error("unknown --mode (use basic, fo or react)");
}

template <class B>
int cmd_encrypt_g(std::shared_ptr<const typename B::Params> p,
                  const std::string& set_name, const Envelope& server_env,
                  const Args& args) {
  core::BasicServerPublicKey<B> server =
      core::BasicServerPublicKey<B>::from_bytes(*p, server_env.payload);
  Envelope user_env = read_envelope(args.get("user-pub"), FileKind::kUserPub);
  require(user_env.set_name == set_name, "user and server keys use different sets");
  core::BasicUserPublicKey<B> user =
      core::BasicUserPublicKey<B>::from_bytes(*p, user_env.payload);
  core::BasicTreScheme<B> scheme(p);
  hashing::SystemRandom rng;
  Bytes msg = read_file(args.get("in"));
  std::string tag = tag_arg(args);
  std::string mode = args.get_or("mode", "fo");

  // "sealed[-flavour]" uses the unified seal() API and the mode-tagged
  // wire format (one file kind for all three flavours).
  std::optional<core::Mode> sealed_mode;
  if (mode == "sealed" || mode == "sealed-fo") sealed_mode = core::Mode::kFo;
  if (mode == "sealed-basic") sealed_mode = core::Mode::kBasic;
  if (mode == "sealed-react") sealed_mode = core::Mode::kReact;

  // --fallback W adds the time-lock lane: a hybrid envelope whose
  // payload key also sits behind W sequential squarings, openable with
  // `solve` when the server never publishes the update.
  std::string fallback = args.get_or("fallback", "");
  if (!fallback.empty()) {
    core::Mode inner = core::Mode::kFo;
    if (mode == "basic" || mode == "sealed-basic") inner = core::Mode::kBasic;
    else if (mode == "react" || mode == "sealed-react") inner = core::Mode::kReact;
    else require(mode == "fo" || mode == "sealed" || mode == "sealed-fo",
                 "unknown --mode (use basic, fo, react or sealed[-flavour])");
    timelock::FallbackParams fb;
    fb.squarings = parse_u64(fallback, "--fallback");
    fb.modulus_bits = static_cast<size_t>(
        parse_u64(args.get_or("fallback-modulus-bits", "1024"),
                  "--fallback-modulus-bits"));
    timelock::BasicHybridEnvelope<B> env =
        timelock::seal_hybrid(scheme, inner, msg, user, server, tag, fb, rng);
    Bytes wire = env.to_bytes();
    write_envelope(args.get("out"), FileKind::kCiphertextHybrid, set_name, wire);
    std::printf(
        "%zu bytes encrypted for release at \"%s\" (hybrid %s mode, "
        "%llu-squaring fallback, %zu bytes)\n",
        msg.size(), tag.c_str(), core::mode_name(inner),
        static_cast<unsigned long long>(fb.squarings), wire.size());
    return 0;
  }

  Bytes payload;
  FileKind kind;
  if (sealed_mode) {
    payload = core::seal(scheme, *sealed_mode, msg, user, server, tag, rng).to_bytes();
    kind = FileKind::kCiphertextSealed;
  } else if (mode == "basic") {
    payload = scheme.encrypt(msg, user, server, tag, rng).to_bytes();
    kind = ct_kind(mode);
  } else if (mode == "fo") {
    payload = scheme.encrypt_fo(msg, user, server, tag, rng).to_bytes();
    kind = ct_kind(mode);
  } else if (mode == "react") {
    payload = scheme.encrypt_react(msg, user, server, tag, rng).to_bytes();
    kind = ct_kind(mode);
  } else {
    throw Error("unknown --mode (use basic, fo, react or sealed[-flavour])");
  }
  write_envelope(args.get("out"), kind, set_name, payload);
  std::printf("%zu bytes encrypted for release at \"%s\" (%s mode, %zu bytes)\n",
              msg.size(), tag.c_str(), mode.c_str(), payload.size());
  return 0;
}

template <class B>
int cmd_decrypt_g(std::shared_ptr<const typename B::Params> p,
                  const std::string& set_name, const Envelope& key_env,
                  const Args& args) {
  core::BasicTreScheme<B> scheme(p);
  size_t sw = B::scalar_bytes(*p);
  require(key_env.payload.size() > sw, "corrupt user key file");
  core::Scalar a = core::Scalar::from_bytes_be(ByteSpan(key_env.payload.data(), sw));

  Envelope upd_env = read_envelope(args.get("update"), FileKind::kUpdate);
  require(upd_env.set_name == set_name, "update uses a different parameter set");
  core::BasicKeyUpdate<B> upd = core::BasicKeyUpdate<B>::from_bytes(*p, upd_env.payload);

  Envelope ct_env = parse_envelope(args.get("in"));
  require(ct_env.set_name == set_name, "ciphertext uses a different parameter set");

  auto read_server = [&]() {
    Envelope env = read_envelope(args.get("server-pub"), FileKind::kServerPub);
    require(env.set_name == set_name, "server key uses a different parameter set");
    return core::BasicServerPublicKey<B>::from_bytes(*p, env.payload);
  };

  if (ct_env.kind == FileKind::kCiphertextHybrid) {
    // Server lane of a hybrid envelope: the epoch update opens it the
    // normal way (the time-lock lane is `solve`'s job).
    core::BasicServerPublicKey<B> server = read_server();
    timelock::BasicHybridEnvelope<B> env =
        timelock::BasicHybridEnvelope<B>::from_bytes(*p, ct_env.payload);
    auto out = timelock::open_hybrid(scheme, env, a, upd, server);
    require(out.has_value(), "decryption failed: wrong key/update or tampered ciphertext");
    write_file(args.get("out"), *out);
    std::printf("%zu bytes decrypted (hybrid envelope, server lane)\n", out->size());
    return 0;
  }

  if (ct_env.kind == FileKind::kCiphertextSealed) {
    // Self-describing wire: the mode byte picks the flavour, open()
    // dispatches. --server-pub is always required (the FO flavour's
    // re-encryption check needs it).
    core::BasicServerPublicKey<B> server = read_server();
    core::BasicSealedCiphertext<B> sc =
        core::BasicSealedCiphertext<B>::from_bytes(*p, ct_env.payload);
    auto out = core::open(scheme, sc, a, upd, server);
    require(out.has_value(), "decryption failed: wrong key/update or tampered ciphertext");
    write_file(args.get("out"), *out);
    std::printf("%zu bytes decrypted (%s mode)\n", out->size(),
                core::mode_name(sc.mode()));
    return 0;
  }

  std::string mode = args.get_or("mode", "fo");
  require(ct_env.kind == ct_kind(mode), "wrong file kind for this option");

  Bytes msg;
  if (mode == "basic") {
    msg = scheme.decrypt(core::BasicCiphertext<B>::from_bytes(*p, ct_env.payload), a, upd);
  } else if (mode == "fo") {
    core::BasicServerPublicKey<B> server = read_server();
    auto out = scheme.decrypt_fo(
        core::BasicFoCiphertext<B>::from_bytes(*p, ct_env.payload), a, upd, server);
    require(out.has_value(), "decryption failed: wrong key/update or tampered ciphertext");
    msg = *out;
  } else {
    auto out = scheme.decrypt_react(
        core::BasicReactCiphertext<B>::from_bytes(*p, ct_env.payload), a, upd);
    require(out.has_value(), "decryption failed: wrong key/update or tampered ciphertext");
    msg = *out;
  }
  write_file(args.get("out"), msg);
  std::printf("%zu bytes decrypted\n", msg.size());
  return 0;
}

// ---- solve: grind the time-lock lane -----------------------------------
// Opens a hybrid ciphertext WITHOUT the server: restore (or start) the
// checkpointed solver, advance up to --budget squarings saving a
// checkpoint every --checkpoint-every, and unseal once done. Exit 3 when
// the budget ran out first — rerun with the same --checkpoint to resume.

template <class B>
int cmd_solve_g(std::shared_ptr<const typename B::Params> p,
                const std::string& /*set_name*/, const Envelope& ct_env,
                const Args& args) {
  timelock::BasicHybridEnvelope<B> env =
      timelock::BasicHybridEnvelope<B>::from_bytes(*p, ct_env.payload);

  std::string ckpt_path = args.get_or("checkpoint", "");
  std::uint64_t budget = parse_u64(args.get_or("budget", "0"), "--budget");
  std::uint64_t every =
      parse_u64(args.get_or("checkpoint-every", "65536"), "--checkpoint-every");
  require(every >= 1, "--checkpoint-every: must be at least 1");

  std::optional<timelock::RswSolver> solver;
  if (!ckpt_path.empty()) {
    std::ifstream probe(ckpt_path, std::ios::binary);
    if (probe.good()) {
      probe.close();
      solver.emplace(timelock::RswSolver::restore(env.puzzle, read_file(ckpt_path)));
      std::printf("resumed from %s: %llu / %llu squarings done\n", ckpt_path.c_str(),
                  static_cast<unsigned long long>(solver->steps_done()),
                  static_cast<unsigned long long>(solver->total_steps()));
    }
  }
  if (!solver) solver.emplace(timelock::RswSolver(env.puzzle));

  std::uint64_t spent = 0;
  auto save_checkpoint = [&] {
    if (!ckpt_path.empty()) write_file(ckpt_path, solver->checkpoint());
  };
  while (!solver->done()) {
    std::uint64_t chunk = every;
    if (budget != 0) {
      if (spent >= budget) break;
      chunk = std::min(chunk, budget - spent);
    }
    spent += solver->advance(chunk);
    save_checkpoint();
  }

  if (!solver->done()) {
    std::printf("budget exhausted: %llu / %llu squarings done%s\n",
                static_cast<unsigned long long>(solver->steps_done()),
                static_cast<unsigned long long>(solver->total_steps()),
                ckpt_path.empty() ? "" : " (checkpoint saved)");
    return 3;
  }
  auto out = timelock::open_hybrid_with_key(env, solver->key());
  require(out.has_value(),
          "solve: puzzle solved but the envelope rejected the key (tampered file?)");
  write_file(args.get("out"), *out);
  std::printf("%zu bytes decrypted (hybrid envelope, time-lock lane, "
              "%llu squarings)\n",
              out->size(),
              static_cast<unsigned long long>(solver->total_steps()));
  return 0;
}

// ---- threshold beacon: setup / issue-partial / fetch --threshold -------
// The t-of-n pipeline of threshold/: no single machine ever holds the
// group secret (DKG path), each beacon node signs with its share alone,
// and any K verified partials Lagrange-aggregate into the ordinary
// update — byte-identical to what a single server holding s would issue.

template <class B>
int cmd_threshold_setup_g(std::shared_ptr<const typename B::Params> p,
                          const std::string& set_name, const Args& args) {
  threshold::ThresholdConfig cfg;
  cfg.n = static_cast<size_t>(parse_u64(args.get("n"), "--n"));
  cfg.k = static_cast<size_t>(parse_u64(args.get("t"), "--t"));
  require(cfg.k >= 1 && cfg.k <= cfg.n, "threshold-setup: need 1 <= t <= n");
  const std::string prefix = args.get("out-prefix");
  hashing::SystemRandom rng;

  threshold::BasicThresholdKey<B> key;
  std::vector<threshold::BasicServerShare<B>> shares;
  const bool dealer = args.get_or("dealer", "0") == "1";
  if (dealer) {
    threshold::BasicThresholdScheme<B> ts(p);
    std::tie(key, shares) = ts.setup(cfg, rng);
  } else {
    auto dkg = threshold::run_dkg<B>(p, cfg, rng);
    require(dkg.ok(), "threshold-setup: DKG failed (complaints disqualified "
                      "too many dealers)");
    key = std::move(dkg->key);
    shares = std::move(dkg->shares);
  }

  write_envelope(prefix + ".tkey", FileKind::kThresholdKey, set_name,
                 key.to_bytes());
  // The group key doubles as an ordinary server-pub: every existing
  // command (encrypt, verify-update, fetch) binds to it unchanged.
  write_envelope(prefix + ".pub", FileKind::kServerPub, set_name,
                 key.group.to_bytes());
  const std::string password = args.get_or("password", "");
  for (const threshold::BasicServerShare<B>& share : shares) {
    write_secret(prefix + "-share-" + std::to_string(share.index) + ".key",
                 FileKind::kThresholdShare, FileKind::kThresholdShareSealed,
                 set_name, share.to_bytes(*p), password, rng);
  }
  std::printf("%zu-of-%zu threshold beacon set up via %s (%s): %s.tkey, "
              "%s.pub, %zu share files\n",
              cfg.k, cfg.n, dealer ? "trusted dealer" : "DKG",
              set_name.c_str(), prefix.c_str(), prefix.c_str(), shares.size());
  return 0;
}

template <class B>
int cmd_issue_partial_g(std::shared_ptr<const typename B::Params> p,
                        const std::string& set_name, const Envelope& share_env,
                        const Args& args) {
  Envelope key_env = read_envelope(args.get("tkey"), FileKind::kThresholdKey);
  require(key_env.set_name == set_name,
          "share and threshold key use different parameter sets");
  threshold::BasicThresholdKey<B> key =
      threshold::BasicThresholdKey<B>::from_bytes(*p, key_env.payload);
  threshold::BasicServerShare<B> share =
      threshold::BasicServerShare<B>::from_bytes(*p, share_env.payload);
  require(share.index >= 1 && share.index <= key.config.n,
          "share index out of range for this threshold key");

  threshold::BasicThresholdScheme<B> ts(p);
  threshold::BasicPartialUpdate<B> partial =
      ts.issue_partial(share, tag_arg(args));
  require(ts.verify_partial(key, partial),
          "issue-partial: fresh partial failed its own pairing check "
          "(share does not match the threshold key?)");
  write_envelope(args.get("out"), FileKind::kPartialUpdate, set_name,
                 partial.to_bytes());
  std::printf("partial update %zu/%zu issued for \"%s\" (%zu bytes)\n",
              partial.index, key.config.n, partial.tag.c_str(),
              partial.to_bytes().size());
  return 0;
}

// fetch --threshold K: quorum collection over live tred endpoints. Every
// endpoint is one beacon node; the fetcher's RLC batch attributes forged
// partials to their exact share indices before aggregation.
template <class B>
int cmd_fetch_threshold_g(std::shared_ptr<const typename B::Params> p,
                          const std::string& set_name,
                          const Envelope& key_env, const Args& args) {
  threshold::BasicThresholdKey<B> key =
      threshold::BasicThresholdKey<B>::from_bytes(*p, key_env.payload);
  const size_t want_k =
      static_cast<size_t>(parse_u64(args.get("threshold"), "--threshold"));
  require(want_k == key.config.k,
          "fetch: --threshold does not match the key's t (cross-check)");

  threshold::BasicThresholdScheme<B> ts(p);
  core::BasicTreScheme<B> scheme(p);

  std::vector<client::SocketTransport::Endpoint> endpoints;
  for (const std::string& hp : cli::split_commas(args.get("remote"))) {
    cli::HostPort parsed = cli::parse_host_port(hp, "--remote");
    endpoints.push_back({parsed.host, parsed.port});
  }
  require(!endpoints.empty(), "fetch: --remote needs at least one HOST:PORT");
  int timeout_ms = static_cast<int>(
      parse_u64(args.get_or("timeout-ms", "2000"), "--timeout-ms"));
  client::SocketTransport transport(endpoints, timeout_ms);

  std::vector<size_t> order(endpoints.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  server::Timeline timeline(0);
  client::BasicUpdateFetcher<B> fetcher(scheme, key.as_server_public_key(),
                                        transport, timeline, order,
                                        to_bytes("tre-cli-threshold"), {});

  const std::string tag = tag_arg(args);
  auto res = fetcher.fetch_threshold(ts, key, tag);
  if (!res.ok()) {
    std::fprintf(stderr,
                 "fetch: could not field %zu valid partials for \"%s\" "
                 "from %zu endpoints\n",
                 key.config.k, tag.c_str(), endpoints.size());
    return 1;
  }
  write_envelope(args.get("out"), FileKind::kUpdate, set_name,
                 res->update.to_bytes());
  std::printf("update for \"%s\" aggregated from %zu partials and VERIFIED "
              "(%zu slots polled, %zu rejected",
              tag.c_str(), res->partials_used, res->slots_polled,
              res->rejected_parse + res->rejected_tag + res->rejected_dup +
                  res->rejected_sig);
  if (!res->byzantine_nodes.empty()) {
    std::printf("; Byzantine nodes:");
    for (size_t idx : res->byzantine_nodes) std::printf(" %zu", idx);
  }
  std::printf(")\n");
  return 0;
}

// Runs `fn<B>(params, set_name)` for the backend `set_name` selects.
template <class Fn>
int with_backend(const std::string& set_name, const Args& args, Fn&& fn) {
  check_backend_flag(args, set_name);
  if (set_name == kBls381Set) {
    return fn(bls12::Bls381Backend{}, bls12::Bls12Ctx::get());
  }
  return fn(core::Tre512Backend{}, load_set(set_name));
}

// ---- serve: the all-in-one daemon front end ----------------------------
// tred with an issuing convenience: --server-key/--tags signs updates at
// boot. Trust assumption 2 (the server never discloses I_T early) is
// enforced here with the WALL CLOCK: a tag that parses as a time
// specification still in the future is refused outright.

tre::daemon::Daemon* g_serve_daemon = nullptr;

void serve_signal(int) {
  if (g_serve_daemon != nullptr) g_serve_daemon->stop();
}

template <class B>
void serve_issue_g(std::shared_ptr<const typename B::Params> p,
                   const std::string& set_name, const Envelope& key_env,
                   const std::vector<std::string>& tags,
                   daemon::Store& store) {
  core::BasicTreScheme<B> scheme(p);
  size_t sw = B::scalar_bytes(*p);
  require(key_env.payload.size() > sw, "corrupt server key file");
  core::Scalar s = core::Scalar::from_bytes_be(ByteSpan(key_env.payload.data(), sw));
  core::BasicServerPublicKey<B> pub = core::BasicServerPublicKey<B>::from_bytes(
      *p, ByteSpan(key_env.payload.data() + sw, key_env.payload.size() - sw));
  store.set_server_key(set_name, pub.to_bytes());

  const std::int64_t now = static_cast<std::int64_t>(std::time(nullptr));
  for (const std::string& tag : tags) {
    if (auto spec = server::TimeSpec::parse(tag)) {
      require(spec->unix_seconds() <= now,
              "serve: refusing to issue an update for a FUTURE instant — the "
              "time server must never pre-disclose (trust assumption 2)");
    }
    core::BasicKeyUpdate<B> upd =
        scheme.issue_update(core::BasicServerKeyPair<B>{s, pub}, tag);
    auto r = store.put(tag, upd.to_bytes());
    require(r.ok(), "serve: conflicting update for the same tag");
  }
}

int cmd_serve(const Args& args) {
  auto store = std::make_shared<daemon::Store>();

  std::string key_path = args.get_or("server-key", "");
  if (!key_path.empty()) {
    Envelope env = read_secret(key_path, FileKind::kServerKey,
                               FileKind::kServerKeySealed,
                               args.get_or("password", ""));
    std::vector<std::string> tags = cli::split_commas(args.get_or("tags", ""));
    with_backend(env.set_name, args, [&](auto b, auto p) {
      serve_issue_g<decltype(b)>(p, env.set_name, env, tags, *store);
      return 0;
    });
    // --pub is optional on this path (the public key came off the secret).
    if (args.has("pub")) {
      Envelope pub = read_envelope(args.get("pub"), FileKind::kServerPub);
      require(pub.set_name == env.set_name,
              "serve: --pub and --server-key use different parameter sets");
    }
  } else {
    cli::load_store(*store, args.get("pub"),
                    cli::split_commas(args.get_or("updates", "")));
  }
  if (!key_path.empty() && args.has("updates")) {
    // Pre-issued files can ride along with the issuing path too.
    auto [set_name, pub_wire] = store->server_key();
    for (const std::string& path : cli::split_commas(args.get("updates"))) {
      Envelope upd = read_envelope(path, FileKind::kUpdate);
      require(upd.set_name == set_name,
              "update and server key use different parameter sets");
      auto r = store->put(cli::update_wire_tag(upd.payload), upd.payload);
      require(r.ok(), "conflicting update for the same tag");
    }
  }

  // Beacon-node serving: pre-issued partial updates ride the kGetPartial
  // lane (one partial per tag per node — this daemon IS one node).
  for (const std::string& path : cli::split_commas(args.get_or("partials", ""))) {
    Envelope part = read_envelope(path, FileKind::kPartialUpdate);
    auto [set_name, pub_wire] = store->server_key();
    require(pub_wire.empty() || part.set_name == set_name,
            "partial and server key use different parameter sets");
    auto r = store->put_partial(cli::partial_wire_tag(part.payload), part.payload);
    require(r.ok(), "serve: conflicting partial for the same tag");
  }

  daemon::DaemonConfig cfg;
  cfg.bind_address = args.get_or("bind", "127.0.0.1");
  cfg.port = static_cast<std::uint16_t>(
      parse_u64(args.get_or("port", "0"), "--port"));
  cfg.max_conns = static_cast<size_t>(
      parse_u64(args.get_or("max-conns", "4096"), "--max-conns"));
  cfg.idle_timeout_ms = static_cast<std::int64_t>(
      parse_u64(args.get_or("idle-timeout-ms", "30000"), "--idle-timeout-ms"));

  daemon::Daemon d(store, cfg);
  g_serve_daemon = &d;
  std::signal(SIGINT, serve_signal);
  std::signal(SIGTERM, serve_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::string port_file = args.get_or("port-file", "");
  if (!port_file.empty()) {
    std::string text = std::to_string(d.port()) + "\n";
    write_file(port_file,
               ByteSpan(reinterpret_cast<const std::uint8_t*>(text.data()),
                        text.size()));
  }
  std::printf("serving %zu updates on %s:%u\n", store->size(),
              cfg.bind_address.c_str(), d.port());
  std::fflush(stdout);

  d.run();
  g_serve_daemon = nullptr;
  daemon::Daemon::Stats s = d.stats();
  std::printf("shut down: %llu accepted, %llu requests, %llu shed\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.shed));
  return 0;
}

// ---- fetch: the Byzantine trust gate over real sockets -----------------
// The same UpdateFetcher pipeline the simnet experiments harden — parse,
// tag check, pairing check, health-scored failover — pointed at live
// tred endpoints through a SocketTransport.

// Catch-up mode (--from/--to): page the daemon's archive through
// kGetRange and push every page through the batch-verified trust gate
// (one RLC pairing check per page instead of one per update; forged
// items are bisected out and dropped). Updates whose tags parse as
// instants inside [from, to] are written to --out-dir, one envelope per
// update, in archive order.
template <class B>
int cmd_fetch_range_g(std::shared_ptr<const typename B::Params> p,
                      const std::string& set_name, const Envelope& server_env,
                      const Args& args) {
  require(args.has("from") && args.has("to"),
          "fetch: --from and --to must be given together");
  std::optional<server::TimeSpec> from = server::TimeSpec::parse(args.get("from"));
  std::optional<server::TimeSpec> to = server::TimeSpec::parse(args.get("to"));
  require(from.has_value(), "fetch: --from is not a canonical time string");
  require(to.has_value(), "fetch: --to is not a canonical time string");
  require(from->unix_seconds() <= to->unix_seconds(),
          "fetch: --from is after --to");
  const std::string out_dir = args.get("out-dir");

  core::BasicServerPublicKey<B> server =
      core::BasicServerPublicKey<B>::from_bytes(*p, server_env.payload);
  core::BasicTreScheme<B> scheme(p);

  std::vector<client::SocketTransport::Endpoint> endpoints;
  for (const std::string& hp : cli::split_commas(args.get("remote"))) {
    cli::HostPort parsed = cli::parse_host_port(hp, "--remote");
    endpoints.push_back({parsed.host, parsed.port});
  }
  require(!endpoints.empty(), "fetch: --remote needs at least one HOST:PORT");
  int timeout_ms = static_cast<int>(
      parse_u64(args.get_or("timeout-ms", "2000"), "--timeout-ms"));
  client::SocketTransport transport(endpoints, timeout_ms);

  std::vector<size_t> order(endpoints.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  server::Timeline timeline(0);
  client::BasicUpdateFetcher<B> fetcher(scheme, server, transport, timeline,
                                        order, to_bytes("tre-cli-catchup"), {});

  const std::uint32_t page_size = static_cast<std::uint32_t>(
      parse_u64(args.get_or("page", "256"), "--page"));

  // Walk the archive on each mirror in turn until one serves a full
  // scan; forged pages demote a mirror but never poison the output.
  size_t written = 0, dropped = 0, skipped = 0;
  bool complete = false;
  for (size_t slot = 0; slot < order.size() && !complete; ++slot) {
    std::uint64_t pos = 0;
    written = dropped = skipped = 0;  // a fresh mirror restarts the scan
    for (;;) {
      std::optional<client::BasicRangeFetchResult<B>> res =
          fetcher.fetch_range_verified(slot, pos, page_size);
      if (!res) break;  // wire trouble: try the next mirror
      dropped += res->rejected_sig + res->rejected_parse;
      for (const core::BasicKeyUpdate<B>& u : res->updates) {
        std::optional<server::TimeSpec> t = server::TimeSpec::parse(u.tag);
        if (!t || *t < *from || *to < *t) {
          ++skipped;
          continue;
        }
        char name[32];
        std::snprintf(name, sizeof name, "update-%06zu.bin", written);
        write_envelope(out_dir + "/" + name, FileKind::kUpdate, set_name,
                       u.to_bytes());
        ++written;
      }
      pos += res->served;
      if (pos >= res->total || res->served == 0) {
        complete = pos >= res->total;
        break;
      }
    }
  }
  if (!complete) {
    std::fprintf(stderr, "fetch: no mirror served a full archive scan\n");
    return 1;
  }
  std::printf("catch-up [%s, %s]: %zu updates fetched and VERIFIED "
              "(%zu outside range, %zu forged/damaged dropped)\n",
              from->canonical().c_str(), to->canonical().c_str(), written,
              skipped, dropped);
  return 0;
}

template <class B>
int cmd_fetch_g(std::shared_ptr<const typename B::Params> p,
                const std::string& set_name, const Envelope& server_env,
                const Args& args) {
  if (args.has("from") || args.has("to")) {
    return cmd_fetch_range_g<B>(std::move(p), set_name, server_env, args);
  }
  core::BasicServerPublicKey<B> server =
      core::BasicServerPublicKey<B>::from_bytes(*p, server_env.payload);
  core::BasicTreScheme<B> scheme(p);

  std::vector<client::SocketTransport::Endpoint> endpoints;
  for (const std::string& hp : cli::split_commas(args.get("remote"))) {
    cli::HostPort parsed = cli::parse_host_port(hp, "--remote");
    endpoints.push_back({parsed.host, parsed.port});
  }
  require(!endpoints.empty(), "fetch: --remote needs at least one HOST:PORT");
  int timeout_ms = static_cast<int>(
      parse_u64(args.get_or("timeout-ms", "2000"), "--timeout-ms"));
  client::SocketTransport transport(endpoints, timeout_ms);

  std::vector<size_t> order(endpoints.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  client::FetcherConfig cfg;
  cfg.attempts_per_tag = static_cast<size_t>(
      parse_u64(args.get_or("attempts", "8"), "--attempts"));
  server::Timeline timeline(0);
  client::BasicUpdateFetcher<B> fetcher(scheme, server, transport, timeline,
                                        order, to_bytes("tre-cli-fetch"), cfg);

  std::string tag = tag_arg(args);
  std::optional<core::BasicKeyUpdate<B>> got;
  bool failed = false;
  fetcher.fetch_verified({tag},
                         [&](const client::BasicFetchResult<B>& r) {
                           got = r.update;
                         },
                         [&](const client::FetchStats&) { failed = true; });
  // Socket replies land synchronously inside request(); the timeline only
  // drives the retry/backoff schedule, so advancing one tick at a time
  // runs the state machine to completion.
  while (fetcher.busy()) timeline.advance_by(1);
  (void)failed;

  client::FetchStats stats = fetcher.stats();
  if (!got) {
    std::fprintf(stderr,
                 "fetch: no verifiable update for \"%s\" (%zu attempts, "
                 "%zu rejected, %zu timeouts)\n",
                 tag.c_str(), stats.attempts, stats.total_rejected(),
                 stats.timeouts);
    return 1;
  }
  write_envelope(args.get("out"), FileKind::kUpdate, set_name, got->to_bytes());
  std::printf("update for \"%s\" fetched and VERIFIED (%zu attempts, "
              "%zu rejected)\n",
              got->tag.c_str(), stats.attempts, stats.total_rejected());
  return 0;
}

int cmd_fetch(const Args& args) {
  if (args.has("threshold")) {
    Envelope env = read_envelope(args.get("tkey"), FileKind::kThresholdKey);
    return with_backend(env.set_name, args, [&](auto b, auto p) {
      return cmd_fetch_threshold_g<decltype(b)>(p, env.set_name, env, args);
    });
  }
  Envelope env = read_envelope(args.get("server-pub"), FileKind::kServerPub);
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_fetch_g<decltype(b)>(p, env.set_name, env, args);
  });
}

// ---- selftest: run the power-on KAT suite ------------------------------

int cmd_selftest(const Args&) {
  selftest::ensure_registered();
  if (!health::enabled()) {
    std::printf("selftest: built with TRE_SELFTEST=OFF — gate disabled\n");
  }
  std::optional<selftest::Kat> fault;
  if (const char* env = std::getenv("TRE_SELFTEST_FAULT")) {
    fault = selftest::kat_from_name(env);
    if (!fault) {
      std::printf("selftest: unknown TRE_SELFTEST_FAULT \"%s\" — failing closed\n",
                  env);
      return 1;
    }
    std::printf("selftest: injecting fault into %s\n", selftest::kat_name(*fault));
  }
  selftest::Report report = selftest::run(fault);
  for (selftest::Kat kat : selftest::all_kats()) {
    bool failed = std::find(report.failed.begin(), report.failed.end(), kat) !=
                  report.failed.end();
    std::printf("  %-14s %s\n", selftest::kat_name(kat), failed ? "FAIL" : "ok");
  }
  std::printf("selftest: %zu passed, %zu failed — %s\n", report.passed.size(),
              report.failed.size(), report.ok() ? "OPERATIONAL" : "POISONED");
  return report.ok() ? 0 : 1;
}

// ---- dispatchers -------------------------------------------------------
// server-keygen picks the backend from --backend; every other command
// reads it off its input files' set name.

int cmd_server_keygen(const Args& args) {
  std::string backend = args.get_or("backend", "tre512");
  if (backend == "bls381") {
    return cmd_server_keygen_g<bls12::Bls381Backend>(bls12::Bls12Ctx::get(),
                                                     kBls381Set, args);
  }
  require(backend == "tre512", "unknown --backend (use tre512 or bls381)");
  auto p = load_set(args.get_or("set", "tre-512"));
  return cmd_server_keygen_g<core::Tre512Backend>(p, p->name, args);
}

int cmd_threshold_setup(const Args& args) {
  std::string backend = args.get_or("backend", "tre512");
  if (backend == "bls381") {
    return cmd_threshold_setup_g<bls12::Bls381Backend>(bls12::Bls12Ctx::get(),
                                                       kBls381Set, args);
  }
  require(backend == "tre512", "unknown --backend (use tre512 or bls381)");
  auto p = load_set(args.get_or("set", "tre-512"));
  return cmd_threshold_setup_g<core::Tre512Backend>(p, p->name, args);
}

int cmd_issue_partial(const Args& args) {
  Envelope env = read_secret(args.get("share"), FileKind::kThresholdShare,
                             FileKind::kThresholdShareSealed,
                             args.get_or("password", ""));
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_issue_partial_g<decltype(b)>(p, env.set_name, env, args);
  });
}

int cmd_user_keygen(const Args& args) {
  Envelope env = read_envelope(args.get("server-pub"), FileKind::kServerPub);
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_user_keygen_g<decltype(b)>(p, env.set_name, env, args);
  });
}

int cmd_issue(const Args& args) {
  Envelope env = read_secret(args.get("server-key"), FileKind::kServerKey,
                             FileKind::kServerKeySealed, args.get_or("password", ""));
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_issue_g<decltype(b)>(p, env.set_name, env, args);
  });
}

int cmd_verify_update(const Args& args) {
  Envelope env = read_envelope(args.get("server-pub"), FileKind::kServerPub);
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_verify_update_g<decltype(b)>(p, env.set_name, env, args);
  });
}

int cmd_encrypt(const Args& args) {
  Envelope env = read_envelope(args.get("server-pub"), FileKind::kServerPub);
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_encrypt_g<decltype(b)>(p, env.set_name, env, args);
  });
}

int cmd_decrypt(const Args& args) {
  Envelope env = read_secret(args.get("user-key"), FileKind::kUserKey,
                             FileKind::kUserKeySealed, args.get_or("password", ""));
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_decrypt_g<decltype(b)>(p, env.set_name, env, args);
  });
}

int cmd_solve(const Args& args) {
  Envelope env = read_envelope(args.get("in"), FileKind::kCiphertextHybrid);
  return with_backend(env.set_name, args, [&](auto b, auto p) {
    return cmd_solve_g<decltype(b)>(p, env.set_name, env, args);
  });
}

}  // namespace

namespace {

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "params") return cmd_params();
  if (cmd == "server-keygen") return cmd_server_keygen(args);
  if (cmd == "user-keygen") return cmd_user_keygen(args);
  if (cmd == "issue") return cmd_issue(args);
  if (cmd == "verify-update") return cmd_verify_update(args);
  if (cmd == "encrypt") return cmd_encrypt(args);
  if (cmd == "decrypt") return cmd_decrypt(args);
  if (cmd == "solve") return cmd_solve(args);
  if (cmd == "threshold-setup") return cmd_threshold_setup(args);
  if (cmd == "issue-partial") return cmd_issue_partial(args);
  if (cmd == "selftest") return cmd_selftest(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "fetch") return cmd_fetch(args);
  return usage();
}

// --metrics FILE: dump the global registry snapshot after the command
// (FILE = '-' writes to stdout). Works with every command.
void maybe_dump_metrics(const Args& args) {
  std::string path = args.get_or("metrics", "");
  if (path.empty()) return;
  std::string json = obs::Registry::global().to_json();
  json.push_back('\n');
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    write_file(path, ByteSpan(reinterpret_cast<const std::uint8_t*>(json.data()),
                              json.size()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  try {
    Args args(argc, argv);
    int rc = dispatch(cmd, args);
    maybe_dump_metrics(args);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tre_cli %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
