// Shared plumbing for the command-line tools (tre_cli, tred): the TRE1
// file envelope, option parsing, and the helpers that load served
// artifacts into a daemon store. Header-only — these are tools, not
// library surface.
//
// Files are self-describing: a 4-byte magic, a type byte, the parameter
// set name, then the payload, so mixing parameter sets or file kinds is
// caught before any cryptography runs.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "daemon/store.h"

namespace tre::cli {

constexpr char kEnvelopeMagic[4] = {'T', 'R', 'E', '1'};

// The set name that routes an envelope to the BLS12-381 backend; type-1
// envelopes carry a params::available() name instead.
constexpr const char* kBls381Set = "bls12-381";

enum class FileKind : std::uint8_t {
  kServerKey = 1,
  kServerPub = 2,
  kUserKey = 3,
  kUserPub = 4,
  kUpdate = 5,
  kCiphertextBasic = 6,
  kCiphertextFo = 7,
  kCiphertextReact = 8,
  kServerKeySealed = 9,   // keystore-encrypted under --password
  kUserKeySealed = 10,
  kCiphertextSealed = 11, // mode-tagged core::SealedCiphertext wire
  kCiphertextHybrid = 12, // timelock::HybridEnvelope (server OR puzzle lane)
  kThresholdKey = 13,     // threshold::BasicThresholdKey wire (public)
  kThresholdShare = 14,   // threshold::BasicServerShare wire (SECRET)
  kThresholdShareSealed = 15,  // keystore-encrypted under --password
  kPartialUpdate = 16,    // threshold::BasicPartialUpdate wire
};

struct Envelope {
  FileKind kind;
  std::string set_name;
  Bytes payload;
};

inline Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open input file");
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

inline void write_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "cannot open output file");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  require(out.good(), "short write");
}

inline Bytes envelope_bytes(FileKind kind, const std::string& set_name,
                            ByteSpan payload) {
  Bytes out(kEnvelopeMagic, kEnvelopeMagic + 4);
  out.push_back(static_cast<std::uint8_t>(kind));
  require(set_name.size() <= 255, "parameter set name too long");
  out.push_back(static_cast<std::uint8_t>(set_name.size()));
  out.insert(out.end(), set_name.begin(), set_name.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

inline void write_envelope(const std::string& path, FileKind kind,
                           const std::string& set_name, ByteSpan payload) {
  write_file(path, envelope_bytes(kind, set_name, payload));
}

inline Envelope parse_envelope_bytes(const Bytes& raw) {
  require(raw.size() >= 6 && std::memcmp(raw.data(), kEnvelopeMagic, 4) == 0,
          "not a tre_cli file (bad magic)");
  Envelope env;
  env.kind = static_cast<FileKind>(raw[4]);
  size_t name_len = raw[5];
  require(raw.size() >= 6 + name_len, "truncated file header");
  env.set_name.assign(raw.begin() + 6, raw.begin() + 6 + static_cast<long>(name_len));
  env.payload.assign(raw.begin() + 6 + static_cast<long>(name_len), raw.end());
  return env;
}

inline Envelope parse_envelope(const std::string& path) {
  return parse_envelope_bytes(read_file(path));
}

inline Envelope read_envelope(const std::string& path, FileKind expected) {
  Envelope env = parse_envelope(path);
  require(env.kind == expected, "wrong file kind for this option");
  return env;
}

class Args {
 public:
  Args(int argc, char** argv, int first = 2) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      require(key.size() > 2 && key.rfind("--", 0) == 0, "options look like --name value");
      require(i + 1 < argc, "missing value for option");
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string get(const std::string& name) const {
    auto it = values_.find(name);
    require(it != values_.end(), "missing required option (see usage in --help)");
    return it->second;
  }

  std::string get_or(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  bool has(const std::string& name) const { return values_.count(name) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

inline std::uint64_t parse_u64(const std::string& s, const char* what) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    throw Error(std::string(what) + ": expected a decimal number");
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0')
    throw Error(std::string(what) + ": number out of range");
  return v;
}

/// "HOST:PORT" -> (host, port); host may be omitted ("“:7001" or "7001").
struct HostPort {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

inline HostPort parse_host_port(const std::string& s, const char* what) {
  HostPort hp;
  std::string port_str = s;
  size_t colon = s.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) hp.host = s.substr(0, colon);
    port_str = s.substr(colon + 1);
  }
  std::uint64_t port = parse_u64(port_str, what);
  require(port > 0 && port <= 65535, "port out of range");
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

/// Splits "a,b,c" into parts, skipping empties.
inline std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Loads a server-pub envelope plus update envelopes into a daemon
/// store: the serving surface for tred / tre_cli serve. Updates are
/// archived under their envelope PAYLOAD (the exact KeyUpdate wire a
/// fetcher will parse); the tag is recovered from the wire's leading
/// length-prefixed tag field, which both backends share by construction.
inline std::string update_wire_tag(const Bytes& wire) {
  require(wire.size() >= 2, "update wire too short");
  const size_t tag_len = (size_t(wire[0]) << 8) | wire[1];
  require(wire.size() >= 2 + tag_len, "update wire too short for its tag");
  return std::string(wire.begin() + 2, wire.begin() + 2 + static_cast<long>(tag_len));
}

/// Tag of a PartialUpdate wire (u16 index || u16 tag len || tag || point)
/// without parsing the point — both backends share the layout.
inline std::string partial_wire_tag(const Bytes& wire) {
  require(wire.size() >= 4, "partial wire too short");
  const size_t tag_len = (size_t(wire[2]) << 8) | wire[3];
  require(wire.size() >= 4 + tag_len, "partial wire too short for its tag");
  return std::string(wire.begin() + 4, wire.begin() + 4 + static_cast<long>(tag_len));
}

inline void load_store(daemon::Store& store, const std::string& pub_path,
                       const std::vector<std::string>& update_paths) {
  Envelope pub = read_envelope(pub_path, FileKind::kServerPub);
  store.set_server_key(pub.set_name, pub.payload);
  for (const std::string& path : update_paths) {
    Envelope upd = read_envelope(path, FileKind::kUpdate);
    require(upd.set_name == pub.set_name,
            "update and server key use different parameter sets");
    std::string tag = update_wire_tag(upd.payload);
    auto r = store.put(tag, upd.payload);
    require(r.ok(), "conflicting update for the same tag");
  }
}

}  // namespace tre::cli
