#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   tools/run_tier1.sh                       # plain RelWithDebInfo build
#   TRE_SANITIZE=address,undefined tools/run_tier1.sh
#   BUILD_DIR=build-asan tools/run_tier1.sh  # custom build directory
#   MATRIX=1 tools/run_tier1.sh              # plain + asan/ubsan + tsan
#   METRICS=0 tools/run_tier1.sh             # probes compiled out (-DTRE_METRICS=OFF)
#   TEST_TIMEOUT=600 tools/run_tier1.sh      # per-test ctest ceiling (s)
#
# TRE_SANITIZE is forwarded to the CMake option of the same name and
# instruments every target with -fsanitize=<list>. MATRIX=1 runs the
# full robustness matrix in separate build trees:
#   build         plain (fast, the default tier-1 gate)
#   build-asan    address+undefined — memory safety of the adversarial
#                 deserialization corpus (tests/test_wire_robustness.cpp)
#   build-tsan    thread — data races on the shared core::Tuning caches
#                 (tests/test_concurrency.cpp joins ctest only here)
#
# METRICS=0 selects a metrics-off tree (default BUILD_DIR build-nometrics)
# and proves the suite — including the exact-value accounting tests —
# passes with every obs:: probe compiled to nothing.
set -euo pipefail

cd "$(dirname "$0")/.."

TEST_TIMEOUT="${TEST_TIMEOUT:-300}"

run_one() {
  local build_dir="$1" sanitize="$2"
  local cmake_args=(-B "$build_dir" -S . -DTRE_TEST_TIMEOUT="$TEST_TIMEOUT")
  if [[ -n "$sanitize" ]]; then
    cmake_args+=(-DTRE_SANITIZE="$sanitize")
  fi
  if [[ "${METRICS:-1}" == "0" ]]; then
    cmake_args+=(-DTRE_METRICS=OFF)
  fi
  echo "=== tier1: ${sanitize:-plain} -> $build_dir ==="
  cmake "${cmake_args[@]}"
  cmake --build "$build_dir" -j"$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" \
        --timeout "$TEST_TIMEOUT"
}

# Metrics-off runs default to their own tree so they never poison the
# plain tier-1 cache with TRE_METRICS=OFF.
DEFAULT_DIR=build
if [[ "${METRICS:-1}" == "0" ]]; then
  DEFAULT_DIR=build-nometrics
fi

if [[ "${MATRIX:-0}" == "1" ]]; then
  run_one "${BUILD_DIR:-$DEFAULT_DIR}" ""
  run_one "${BUILD_DIR:-$DEFAULT_DIR}-asan" "address,undefined"
  run_one "${BUILD_DIR:-$DEFAULT_DIR}-tsan" "thread"
else
  run_one "${BUILD_DIR:-$DEFAULT_DIR}" "${TRE_SANITIZE:-}"
fi
