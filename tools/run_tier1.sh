#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   tools/run_tier1.sh                       # plain RelWithDebInfo build
#   TRE_SANITIZE=address,undefined tools/run_tier1.sh
#   BUILD_DIR=build-asan tools/run_tier1.sh  # custom build directory
#   MATRIX=1 tools/run_tier1.sh              # plain + asan/ubsan + tsan
#   METRICS=0 tools/run_tier1.sh             # probes compiled out (-DTRE_METRICS=OFF)
#   SCALING=1 tools/run_tier1.sh             # multicore throughput gate (bench_throughput)
#   BATCH=1 tools/run_tier1.sh               # batch-verification gate: E21 sweep
#                                            # must show >= BATCH_MIN (default 5.0)
#                                            # speedup over per-item verification
#                                            # at N=10^4 on bls12-381
#   PERF381=1 tools/run_tier1.sh             # BLS12-381 pairing-engine speedup gate
#   SELFTEST=1 tools/run_tier1.sh            # power-on KAT gate: every injected
#                                            # fault must fail, the clean run pass,
#                                            # plus a TRE_SELFTEST=OFF opt-out build
#   DAEMON=1 tools/run_tier1.sh              # networked-daemon gate: boot tred,
#                                            # socket fetch, bit-identical verify,
#                                            # then bench_daemon --smoke (>= 1024
#                                            # concurrent connections)
#   THRESH=1 tools/run_tier1.sh              # threshold-beacon gate: 3-of-4 DKG,
#                                            # partials over sockets, two quorums
#                                            # must aggregate bit-identically and
#                                            # decrypt; then bench_threshold's
#                                            # invariant sweep (E22)
#   TEST_TIMEOUT=600 tools/run_tier1.sh      # per-test ctest ceiling (s)
#   BACKEND=381 tools/run_tier1.sh           # BLS12-381 leg only (see below)
#
# TRE_SANITIZE is forwarded to the CMake option of the same name and
# instruments every target with -fsanitize=<list>. MATRIX=1 runs the
# full robustness matrix in separate build trees:
#   build         plain (fast, the default tier-1 gate)
#   build-asan    address+undefined — memory safety of the adversarial
#                 deserialization corpus (tests/test_wire_robustness.cpp)
#   build-tsan    thread — data races on the shared core::Tuning caches,
#                 the persistent parallel_for pool, and the snapshot
#                 registry (tests/test_concurrency.cpp joins ctest only
#                 here)
#
# METRICS=0 selects a metrics-off tree (default BUILD_DIR build-nometrics)
# and proves the suite — including the exact-value accounting tests —
# passes with every obs:: probe compiled to nothing.
#
# BACKEND=381 restricts every ctest leg (including the MATRIX trees) to
# the BLS12-381 backend suites — the low-level curve/pairing tests
# (Bls12Test), the generic-core instantiation and parity suites
# (Tre381Test, Tre381ParityTest, Threshold381Test), and the two-backend
# CLI roundtrip — for fast iteration on the modern curve. The default
# (BACKEND unset or "all") runs the full suite, which already contains
# those tests: the plain gate covers both backends.
#
# SCALING=1 (after the test leg) runs bench_throughput — receiver-side
# decryption at 1/2/4/8 threads — and FAILS if threads_8/threads_1 falls
# below SCALING_MIN (default 3.0). The gate needs real cores: on hosts
# with fewer than 8 hardware threads it prints the ratio and skips the
# verdict, because no scheduler can conjure parallel speedup out of one
# core.
#
# PERF381=1 (after the test leg) runs bench_modern_curve and FAILS if
# the BLS12-381 fast pairing engine's speedup over the pinned seed
# baselines (the baseline_* fields in the JSON) falls below the floors:
# verify and decrypt >= 10x, encrypt >= 5x by default, overridable via
# PERF381_MIN_VERIFY / PERF381_MIN_ENCRYPT / PERF381_MIN_DECRYPT. Like
# the scaling gate it is opt-in: the baselines were measured on the
# reference host, so absolute-ratio floors only mean something on
# comparable hardware.
set -euo pipefail

cd "$(dirname "$0")/.."

TEST_TIMEOUT="${TEST_TIMEOUT:-300}"

# BACKEND=381 narrows ctest to the BLS12-381 suites; anything else (or
# unset) runs everything.
CTEST_FILTER=()
case "${BACKEND:-all}" in
  381) CTEST_FILTER=(-R '381|Bls12Test|cli_roundtrip') ;;
  all) ;;
  *) echo "run_tier1.sh: unknown BACKEND '$BACKEND' (use 381 or all)" >&2; exit 2 ;;
esac

run_one() {
  local build_dir="$1" sanitize="$2"
  local cmake_args=(-B "$build_dir" -S . -DTRE_TEST_TIMEOUT="$TEST_TIMEOUT")
  if [[ -n "$sanitize" ]]; then
    cmake_args+=(-DTRE_SANITIZE="$sanitize")
  fi
  if [[ "${METRICS:-1}" == "0" ]]; then
    cmake_args+=(-DTRE_METRICS=OFF)
  fi
  echo "=== tier1: ${sanitize:-plain} -> $build_dir ==="
  cmake "${cmake_args[@]}"
  cmake --build "$build_dir" -j"$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" \
        --timeout "$TEST_TIMEOUT" ${CTEST_FILTER[@]+"${CTEST_FILTER[@]}"}
}

# Metrics-off runs default to their own tree so they never poison the
# plain tier-1 cache with TRE_METRICS=OFF.
DEFAULT_DIR=build
if [[ "${METRICS:-1}" == "0" ]]; then
  DEFAULT_DIR=build-nometrics
fi

run_scaling_gate() {
  local build_dir="$1" min_ratio="${SCALING_MIN:-3.0}"
  local json="$build_dir/BENCH_throughput_gate.json"
  echo "=== scaling gate: bench_throughput (1/2/4/8 threads) -> $json ==="
  "$build_dir/bench/bench_throughput" "$json"
  # Pull threads_1 / threads_8 out of the "results" block without jq.
  local t1 t8 cores
  t1="$(awk -F': ' '/"threads_1":/ {gsub(/,/, "", $2); print $2; exit}' "$json")"
  t8="$(awk -F': ' '/"threads_8":/ {gsub(/,/, "", $2); print $2; exit}' "$json")"
  cores="$(nproc)"
  local verdict
  verdict="$(awk -v t1="$t1" -v t8="$t8" -v min="$min_ratio" -v cores="$cores" '
    BEGIN {
      ratio = t1 > 0 ? t8 / t1 : 0
      printf "threads_8/threads_1 = %.2f (gate %.2f, %d cores)\n", ratio, min, cores
      if (cores < 8)        print "SKIP"
      else if (ratio < min) print "FAIL"
      else                  print "PASS"
    }')"
  echo "$verdict" | head -1
  case "$(echo "$verdict" | tail -1)" in
    PASS) echo "scaling gate: PASS" ;;
    SKIP) echo "scaling gate: SKIPPED — host has $cores hardware thread(s);" \
               "an 8-thread speedup gate is meaningless below 8 cores" ;;
    FAIL) echo "scaling gate: FAIL — multicore throughput regressed" >&2; return 1 ;;
  esac
}

# BATCH=1: run the E21 batch-verification sweep inside bench_throughput
# and FAIL unless the randomized-RLC batch path beats per-item
# verification by at least BATCH_MIN (default 5.0x) at N=10^4 on the
# bls12-381 backend. The floor is a ratio measured within one run on the
# same host, so unlike PERF381 it needs no pinned reference hardware.
run_batch_gate() {
  local build_dir="$1" min_speedup="${BATCH_MIN:-5.0}"
  local json="$build_dir/BENCH_batch_gate.json"
  echo "=== batch gate: bench_throughput E21 sweep -> $json ==="
  "$build_dir/bench/bench_throughput" "$json"
  # The bls12-381 N=10000 row is one JSON object per line; pull the
  # speedup field out of it without jq. ("n": 10000 followed by a comma
  # or brace cannot match the N=100000 row.)
  local verdict
  verdict="$(awk -v min="$min_speedup" '
    function val(key,   s) {
      s = $0
      if (!sub(".*\"" key "\": *", "", s)) return 0
      sub(/[,}].*/, "", s)
      return s + 0
    }
    /"curve": "bls12-381"/ && /"n": 10000[,}]/ {
      sp = val("speedup")
      printf "bls12-381 N=10^4: batch/per-item speedup = %.2fx (floor %.2f)\n", \
             sp, min
      print (sp >= min) ? "PASS" : "FAIL"
      exit
    }' "$json")"
  echo "$verdict" | head -1
  if [[ "$(echo "$verdict" | tail -1)" == "PASS" ]]; then
    echo "batch gate: PASS"
  else
    echo "batch gate: FAIL — batch verification speedup below floor" >&2
    return 1
  fi
}

run_perf381_gate() {
  local build_dir="$1"
  local json="$build_dir/BENCH_modern_curve_gate.json"
  echo "=== perf381 gate: bench_modern_curve speedup floors -> $json ==="
  "$build_dir/bench/bench_modern_curve" "$json"
  # The bls12-381 backend row is one JSON object per line; pull the
  # measured and pinned-baseline timings out of it without jq.
  local verdict
  verdict="$(awk -v minv="${PERF381_MIN_VERIFY:-10.0}" \
                 -v mine="${PERF381_MIN_ENCRYPT:-5.0}" \
                 -v mind="${PERF381_MIN_DECRYPT:-10.0}" '
    function val(key,   s) {
      s = $0
      if (!sub(".*\"" key "\": *", "", s)) return 0
      sub(/[,}].*/, "", s)
      return s + 0
    }
    /"curve": "bls12-381"/ {
      sv = val("baseline_verify_ms") / val("verify_ms")
      se = val("baseline_encrypt_ms") / val("encrypt_ms")
      sd = val("baseline_decrypt_ms") / val("decrypt_ms")
      printf "speedup vs seed: verify %.1fx (floor %.1f), encrypt %.1fx (floor %.1f), decrypt %.1fx (floor %.1f)\n", \
             sv, minv, se, mine, sd, mind
      print (sv >= minv && se >= mine && sd >= mind) ? "PASS" : "FAIL"
      exit
    }' "$json")"
  echo "$verdict" | head -1
  if [[ "$(echo "$verdict" | tail -1)" == "PASS" ]]; then
    echo "perf381 gate: PASS"
  else
    echo "perf381 gate: FAIL — pairing-engine speedup below floor" >&2
    return 1
  fi
}

# DAEMON=1: end-to-end over real sockets. Issues a key pair + one update,
# boots tred on an ephemeral port (readiness = --port-file appearing),
# fetches through the Byzantine-hardened client with tre_cli fetch
# --remote, proves the fetched file is bit-identical AND independently
# verifiable, then runs the bench_daemon smoke (>= 1024 concurrent
# connections, zero shed, zero mismatches). The daemon is always torn
# down, pass or fail.
run_daemon_gate() {
  local build_dir="$1"
  local cli="$build_dir/tools/tre_cli"
  local tred="$build_dir/tools/tred"
  local work tred_pid=""
  work="$(mktemp -d)"
  cleanup_daemon() {
    trap - RETURN  # fire once: RETURN traps outlive the setting function
    if [[ -n "${tred_pid:-}" ]] && kill -0 "$tred_pid" 2>/dev/null; then
      kill "$tred_pid" 2>/dev/null || true
      wait "$tred_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
  }
  trap cleanup_daemon RETURN

  echo "=== daemon gate: tred socket roundtrip + midnight-storm smoke ==="
  "$cli" server-keygen --set tre-toy-96 \
         --key "$work/server.key" --pub "$work/server.pub"
  "$cli" issue --server-key "$work/server.key" \
         --tag "2005-06-06T09:00:00Z" --out "$work/update.bin"

  "$tred" --pub "$work/server.pub" --updates "$work/update.bin" \
          --port 0 --port-file "$work/port" &
  tred_pid=$!
  local i port=""
  for i in $(seq 1 100); do
    [[ -s "$work/port" ]] && { port="$(cat "$work/port")"; break; }
    kill -0 "$tred_pid" 2>/dev/null || break
    sleep 0.05
  done
  if [[ -z "$port" ]]; then
    echo "daemon gate: FAIL — tred never wrote its port file" >&2
    return 1
  fi

  "$cli" fetch --server-pub "$work/server.pub" --remote "127.0.0.1:$port" \
         --tag "2005-06-06T09:00:00Z" --out "$work/fetched.bin"
  if ! cmp -s "$work/update.bin" "$work/fetched.bin"; then
    echo "daemon gate: FAIL — fetched update is not bit-identical" >&2
    return 1
  fi
  "$cli" verify-update --server-pub "$work/server.pub" \
         --update "$work/fetched.bin" >/dev/null
  echo "daemon gate: socket fetch bit-identical and VERIFIED"

  kill "$tred_pid"
  wait "$tred_pid" 2>/dev/null || true
  tred_pid=""

  "$build_dir/bench/bench_daemon" --smoke \
      --json "$build_dir/BENCH_daemon_smoke.json"
  echo "daemon gate: PASS"
}

# THRESH=1: t-of-n beacon end to end over real sockets. Runs the DKG
# (no dealer), issues one partial per node, boots n single-partial
# daemons, and fetches --threshold twice with opposite endpoint
# orderings: different quorums MUST aggregate to bit-identical updates,
# and the aggregate must verify against the group key and decrypt a
# ciphertext that was encrypted against beacon.pub as an ordinary
# server-pub. Finishes with bench_threshold, whose exit code gates the
# bit-identity / liveness / exact-attribution invariants per quorum size.
run_thresh_gate() {
  local build_dir="$1"
  local cli="$build_dir/tools/tre_cli"
  local n=4 t=3 tag="2031-01-01T00:00:00Z"
  local work pids=()
  work="$(mktemp -d)"
  cleanup_thresh() {
    trap - RETURN
    local p
    for p in ${pids[@]+"${pids[@]}"}; do
      kill "$p" 2>/dev/null || true
      wait "$p" 2>/dev/null || true
    done
    rm -rf "$work"
  }
  trap cleanup_thresh RETURN

  echo "=== threshold gate: $t-of-$n DKG beacon over sockets ==="
  "$cli" threshold-setup --set tre-toy-96 --n "$n" --t "$t" \
         --out-prefix "$work/beacon"

  local i remotes=""
  for i in $(seq 1 "$n"); do
    "$cli" issue-partial --share "$work/beacon-share-$i.key" \
           --tkey "$work/beacon.tkey" --tag "$tag" \
           --out "$work/partial-$i.bin"
    "$cli" serve --pub "$work/beacon.pub" --partials "$work/partial-$i.bin" \
           --port 0 --port-file "$work/port-$i" &
    pids+=("$!")
  done
  local j port
  for i in $(seq 1 "$n"); do
    port=""
    for j in $(seq 1 100); do
      [[ -s "$work/port-$i" ]] && { port="$(cat "$work/port-$i")"; break; }
      sleep 0.05
    done
    if [[ -z "$port" ]]; then
      echo "threshold gate: FAIL — node $i never wrote its port file" >&2
      return 1
    fi
    remotes="$remotes${remotes:+,}127.0.0.1:$port"
  done
  local reversed
  reversed="$(echo "$remotes" | tr ',' '\n' | tac | paste -sd,)"

  "$cli" fetch --threshold "$t" --tkey "$work/beacon.tkey" \
         --remote "$remotes" --tag "$tag" --out "$work/agg-fwd.bin"
  "$cli" fetch --threshold "$t" --tkey "$work/beacon.tkey" \
         --remote "$reversed" --tag "$tag" --out "$work/agg-rev.bin"
  if ! cmp -s "$work/agg-fwd.bin" "$work/agg-rev.bin"; then
    echo "threshold gate: FAIL — quorums {1..$t} and {$n..$((n-t+1))}" \
         "aggregated different updates" >&2
    return 1
  fi
  "$cli" verify-update --server-pub "$work/beacon.pub" \
         --update "$work/agg-fwd.bin" >/dev/null

  "$cli" user-keygen --server-pub "$work/beacon.pub" \
         --key "$work/user.key" --pub "$work/user.pub"
  printf 'threshold beacon roundtrip\n' > "$work/msg.txt"
  "$cli" encrypt --user-pub "$work/user.pub" --server-pub "$work/beacon.pub" \
         --tag "$tag" --mode fo --in "$work/msg.txt" --out "$work/ct.bin"
  "$cli" decrypt --user-key "$work/user.key" --server-pub "$work/beacon.pub" \
         --update "$work/agg-fwd.bin" --mode fo \
         --in "$work/ct.bin" --out "$work/msg.out"
  if ! cmp -s "$work/msg.txt" "$work/msg.out"; then
    echo "threshold gate: FAIL — decrypt under the aggregate is not" \
         "bit-identical to the plaintext" >&2
    return 1
  fi
  echo "threshold gate: quorum-independent aggregate VERIFIED + decrypts"

  for i in ${pids[@]+"${pids[@]}"}; do
    kill "$i" 2>/dev/null || true
    wait "$i" 2>/dev/null || true
  done
  pids=()

  "$build_dir/bench/bench_threshold" "$build_dir/BENCH_threshold.json"
  echo "threshold gate: PASS"
}

# SELFTEST=1: prove the power-on gate trips on every single injected KAT
# corruption (tre_cli selftest must exit nonzero), passes clean, and that
# a TRE_SELFTEST=OFF tree still passes the whole suite (the gate is an
# opt-out, not a load-bearing dependency).
run_selftest_gate() {
  local build_dir="$1"
  local cli="$build_dir/tools/tre_cli"
  echo "=== selftest gate: per-KAT fault injection via $cli ==="
  "$cli" selftest >/dev/null || {
    echo "selftest gate: FAIL — clean KAT suite did not pass" >&2; return 1; }
  local kats
  kats="$("$cli" selftest | awk '/^  / {print $1}')"
  local kat
  for kat in $kats; do
    if TRE_SELFTEST_FAULT="$kat" "$cli" selftest >/dev/null 2>&1; then
      echo "selftest gate: FAIL — injected $kat corruption not detected" >&2
      return 1
    fi
    echo "  fault $kat: tripped (ok)"
  done
  if TRE_SELFTEST_FAULT="no-such-kat" "$cli" selftest >/dev/null 2>&1; then
    echo "selftest gate: FAIL — unknown fault name should fail closed" >&2
    return 1
  fi
  echo "selftest gate: PASS (clean suite + $(echo "$kats" | wc -w) fault cases)"

  local off_dir="${build_dir}-noselftest"
  echo "=== selftest gate: TRE_SELFTEST=OFF opt-out tree -> $off_dir ==="
  cmake -B "$off_dir" -S . -DTRE_SELFTEST=OFF -DTRE_TEST_TIMEOUT="$TEST_TIMEOUT"
  cmake --build "$off_dir" -j"$(nproc)"
  ctest --test-dir "$off_dir" --output-on-failure -j"$(nproc)" \
        --timeout "$TEST_TIMEOUT" ${CTEST_FILTER[@]+"${CTEST_FILTER[@]}"}
}

if [[ "${MATRIX:-0}" == "1" ]]; then
  run_one "${BUILD_DIR:-$DEFAULT_DIR}" ""
  run_one "${BUILD_DIR:-$DEFAULT_DIR}-asan" "address,undefined"
  run_one "${BUILD_DIR:-$DEFAULT_DIR}-tsan" "thread"
else
  run_one "${BUILD_DIR:-$DEFAULT_DIR}" "${TRE_SANITIZE:-}"
fi

if [[ "${SCALING:-0}" == "1" ]]; then
  run_scaling_gate "${BUILD_DIR:-$DEFAULT_DIR}"
fi

if [[ "${BATCH:-0}" == "1" ]]; then
  run_batch_gate "${BUILD_DIR:-$DEFAULT_DIR}"
fi

if [[ "${PERF381:-0}" == "1" ]]; then
  run_perf381_gate "${BUILD_DIR:-$DEFAULT_DIR}"
fi

if [[ "${SELFTEST:-0}" == "1" ]]; then
  run_selftest_gate "${BUILD_DIR:-$DEFAULT_DIR}"
fi

if [[ "${DAEMON:-0}" == "1" ]]; then
  run_daemon_gate "${BUILD_DIR:-$DEFAULT_DIR}"
fi

if [[ "${THRESH:-0}" == "1" ]]; then
  run_thresh_gate "${BUILD_DIR:-$DEFAULT_DIR}"
fi
