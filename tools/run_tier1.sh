#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   tools/run_tier1.sh                       # plain RelWithDebInfo build
#   TRE_SANITIZE=address,undefined tools/run_tier1.sh
#   BUILD_DIR=build-asan tools/run_tier1.sh  # custom build directory
#
# TRE_SANITIZE is forwarded to the CMake option of the same name and
# instruments every target with -fsanitize=<list>.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CMAKE_ARGS=(-B "$BUILD_DIR" -S .)
if [[ -n "${TRE_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DTRE_SANITIZE="$TRE_SANITIZE")
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
