// tred — the standalone timed-release daemon.
//
//   tred --pub server.pub --updates u1.bin,u2.bin
//        [--bind 127.0.0.1] [--port 7001] [--port-file F]
//        [--max-conns N] [--idle-timeout-ms N] [--metrics FILE]
//
// Serves pre-issued artifacts over the framed TCP protocol
// (src/daemon/frame.h). Deliberately has NO secret material and NO
// backend dispatch: per the paper's trust argument, the serving side is
// an untrusted byte shuffler — issuing happens elsewhere (tre_cli issue,
// or tre_cli serve for the all-in-one convenience path).
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port as decimal text once listening, which is what scripted
// callers (CI, bench harnesses) watch for readiness. SIGINT/SIGTERM shut
// the loop down cleanly; --metrics dumps the obs registry JSON on exit.
#include <csignal>
#include <cstdio>

#include "daemon/daemon.h"
#include "obs/metrics.h"
#include "cli_common.h"

namespace {

tre::daemon::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();  // async-signal-safe by contract
}

int usage() {
  std::fprintf(stderr,
               "usage: tred --pub FILE [--updates F1,F2,...]\n"
               "            [--bind ADDR] [--port N] [--port-file FILE]\n"
               "            [--max-conns N] [--idle-timeout-ms N]\n"
               "            [--metrics FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tre;
  try {
    cli::Args args(argc, argv, 1);
    if (!args.has("pub")) return usage();

    auto store = std::make_shared<daemon::Store>();
    cli::load_store(*store, args.get("pub"),
                    cli::split_commas(args.get_or("updates", "")));

    daemon::DaemonConfig cfg;
    cfg.bind_address = args.get_or("bind", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(
        cli::parse_u64(args.get_or("port", "0"), "--port"));
    cfg.max_conns = static_cast<size_t>(
        cli::parse_u64(args.get_or("max-conns", "4096"), "--max-conns"));
    cfg.idle_timeout_ms = static_cast<std::int64_t>(
        cli::parse_u64(args.get_or("idle-timeout-ms", "30000"), "--idle-timeout-ms"));

    daemon::Daemon d(store, cfg);
    g_daemon = &d;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::string port_file = args.get_or("port-file", "");
    if (!port_file.empty()) {
      std::string text = std::to_string(d.port()) + "\n";
      cli::write_file(port_file,
                      ByteSpan(reinterpret_cast<const std::uint8_t*>(text.data()),
                               text.size()));
    }
    std::printf("tred: serving %zu updates on %s:%u (max %zu conns)\n",
                store->size(), cfg.bind_address.c_str(), d.port(),
                cfg.max_conns);
    std::fflush(stdout);

    d.run();
    g_daemon = nullptr;

    daemon::Daemon::Stats s = d.stats();
    std::printf("tred: shutting down — %llu accepted, %llu requests, "
                "%llu shed, %llu bad frames\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.bad_frames));

    std::string metrics = args.get_or("metrics", "");
    if (!metrics.empty()) {
      std::string json = obs::Registry::global().to_json();
      json.push_back('\n');
      if (metrics == "-") {
        std::fwrite(json.data(), 1, json.size(), stdout);
      } else {
        cli::write_file(metrics,
                        ByteSpan(reinterpret_cast<const std::uint8_t*>(json.data()),
                                 json.size()));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tred: %s\n", e.what());
    return 1;
  }
}
