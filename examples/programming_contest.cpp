// Worldwide Internet programming contest (the paper's §1 scenario).
//
// The problem set is distributed to every team hours before the start so
// network congestion cannot create unfairness — but it is timed-release
// encrypted. At the start instant the server broadcasts ONE key update;
// every team on the planet unlocks simultaneously. Teams behind a lossy
// link recover the update from the public archive (paper §3 / §6).
//
// Build & run:  ./examples/programming_contest
#include <cstdio>
#include <optional>
#include <vector>

#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/timeserver.h"

int main() {
  using namespace tre;
  auto params = params::load("tre-toy-96");  // many users: use the fast curve
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("contest-example"));

  server::Timeline timeline(server::TimeSpec::parse("2005-06-06T00:00Z")->unix_seconds());
  server::TimeServer authority(params, timeline, server::Granularity::kMinute, rng);
  authority.bus().set_loss_probability(0.3);  // flaky global multicast
  authority.bus().set_delay_range(0, 5);

  const std::string contest_start = "2005-06-06T09:00Z";
  const Bytes problems = to_bytes(
      "Problem A: shortest path with time-release edges\n"
      "Problem B: pairing-friendly curve search\n");

  struct Team {
    std::string name;
    core::UserKeyPair keys;
    core::Ciphertext handout;
    std::optional<Bytes> opened;
  };
  std::vector<Team> teams;
  for (const char* name : {"Toronto", "Tokyo", "Tbilisi", "Tulsa", "Tromso"}) {
    core::UserKeyPair keys = scheme.user_keygen(authority.public_key(), rng);
    // Midnight: organizers distribute per-team encrypted handouts.
    core::Ciphertext handout =
        scheme.encrypt(problems, keys.pub, authority.public_key(), contest_start, rng);
    teams.push_back(Team{name, keys, handout, std::nullopt});
  }
  std::printf("%zu teams received the encrypted problem set at 00:00\n", teams.size());

  // Each team listens for the broadcast.
  for (auto& team : teams) {
    authority.bus().subscribe([&team, &scheme, contest_start](const core::KeyUpdate& upd) {
      if (upd.tag == contest_start && !team.opened) {
        team.opened = scheme.decrypt(team.handout, team.keys.a, upd);
      }
    });
  }

  // The server runs through the morning (one update per minute).
  authority.run(server::TimeSpec::parse("2005-06-06T09:05Z")->unix_seconds());
  timeline.advance_to(server::TimeSpec::parse("2005-06-06T09:05Z")->unix_seconds());

  size_t via_broadcast = 0;
  for (auto& team : teams) {
    if (team.opened) ++via_broadcast;
  }
  std::printf("after start: %zu/%zu teams unlocked via broadcast "
              "(%llu drops on the bus)\n",
              via_broadcast, teams.size(),
              static_cast<unsigned long long>(authority.bus().stats().drops));

  // Unlucky teams fetch the missed update from the public archive.
  core::KeyUpdate archived = *authority.archive().find(contest_start);
  for (auto& team : teams) {
    if (!team.opened) {
      team.opened = scheme.decrypt(team.handout, team.keys.a, archived);
      std::printf("team %-8s recovered the update from the archive\n",
                  team.name.c_str());
    }
  }

  for (const auto& team : teams) {
    if (!team.opened || *team.opened != problems) {
      std::printf("team %s FAILED to open the problems\n", team.name.c_str());
      return 1;
    }
  }
  std::printf("all teams opened identical problem sets; "
              "server broadcast %llu bytes total for %zu teams\n",
              static_cast<unsigned long long>(authority.stats().bytes_published),
              teams.size());
  return 0;
}
