// Policy-lock generalization (paper §5.3.2).
//
// The "time server" becomes a witness signing arbitrary condition
// strings. Here: a hospital's disaster-recovery runbook is locked so the
// on-call engineer can open it only when the operations center attests
// BOTH "It is an emergency" AND "Failover to site B authorized" — the
// conjunction uses the additive combination of witness statements.
//
// Build & run:  ./examples/policy_lock
#include <cstdio>
#include <string>
#include <vector>

#include "core/policylock.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  core::PolicyLock lock(params::load("tre-512"));
  hashing::HmacDrbg rng(to_bytes("policy-example"));

  core::ServerKeyPair ops_center = lock.scheme().server_keygen(rng);
  core::UserKeyPair engineer = lock.scheme().user_keygen(ops_center.pub, rng);

  const std::vector<std::string> conditions = {
      "It is an emergency",
      "Failover to site B authorized",
  };
  Bytes runbook = to_bytes("1. promote replica  2. flip DNS  3. page CTO");
  core::Ciphertext sealed =
      lock.lock_all(runbook, engineer.pub, ops_center.pub, conditions, rng);
  std::printf("runbook locked under %zu conditions (%zu bytes)\n",
              conditions.size(), sealed.to_bytes().size());

  // One statement alone is not enough.
  core::WitnessStatement emergency = lock.attest(ops_center, conditions[0]);
  std::printf("ops center attests: \"%s\"\n", emergency.tag.c_str());
  try {
    (void)lock.unlock_all(sealed, engineer.a, conditions, {&emergency, 1});
    std::printf("ERROR: opened with one statement\n");
    return 1;
  } catch (const Error&) {
    std::printf("engineer tries to open -> refused (second condition missing)\n");
  }

  // The second attestation arrives; both statements together unlock.
  core::WitnessStatement authorized = lock.attest(ops_center, conditions[1]);
  std::printf("ops center attests: \"%s\"\n", authorized.tag.c_str());
  std::vector<core::WitnessStatement> statements = {emergency, authorized};
  Bytes opened = lock.unlock_all(sealed, engineer.a, conditions, statements);
  std::printf("runbook opened: %.*s\n", static_cast<int>(opened.size()),
              reinterpret_cast<const char*>(opened.data()));

  // Statements are publicly verifiable BLS signatures on the condition.
  bool ok = lock.verify_statement(ops_center.pub, emergency) &&
            lock.verify_statement(ops_center.pub, authorized);
  std::printf("statements verify against the witness key: %s\n", ok ? "yes" : "no");
  return opened == runbook && ok ? 0 : 1;
}
