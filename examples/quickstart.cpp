// Quickstart: the paper's protocol in one page.
//
//   1. A time server publishes its public key once.
//   2. A receiver derives a key pair bound to that server.
//   3. A sender encrypts "into the future" with NO server interaction.
//   4. At the release time the server broadcasts one self-authenticating
//      update — identical for every receiver on earth.
//   5. The receiver combines the update with their private key to decrypt.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;

  // Domain parameters: the ~512-bit supersingular curve (80-bit security,
  // the paper-era default).
  core::TreScheme scheme(params::load("tre-512"));
  hashing::SystemRandom rng;

  // 1. Time server key generation (done once, out of band).
  core::ServerKeyPair server = scheme.server_keygen(rng);

  // 2. Receiver key generation, bound to the server's public key.
  core::UserKeyPair receiver = scheme.user_keygen(server.pub, rng);
  std::printf("receiver public key verifies: %s\n",
              scheme.verify_user_public_key(server.pub, receiver.pub) ? "yes" : "no");

  // 3. Sender: encrypt for a release time, entirely offline.
  const char* release_time = "2030-01-01T00:00:00Z";
  Bytes message = to_bytes("Happy New Year 2030!");
  core::Ciphertext ct =
      scheme.encrypt(message, receiver.pub, server.pub, release_time, rng);
  std::printf("ciphertext: %zu bytes for a %zu-byte message\n",
              ct.to_bytes().size(), message.size());

  // 4. The release instant arrives: the server signs the time string.
  core::KeyUpdate update = scheme.issue_update(server, release_time);
  std::printf("update self-authenticates: %s (%zu bytes, same for all users)\n",
              scheme.verify_update(server.pub, update) ? "yes" : "no",
              update.to_bytes().size());

  // 5. Receiver decrypts with private key + update.
  Bytes opened = scheme.decrypt(ct, receiver.a, update);
  std::printf("decrypted: %.*s\n", static_cast<int>(opened.size()),
              reinterpret_cast<const char*>(opened.data()));

  // Before the release time there is no update, and a wrong one fails:
  core::KeyUpdate early = scheme.issue_update(server, "2029-12-31T23:59:59Z");
  Bytes garbage = scheme.decrypt(ct, receiver.a, early);
  std::printf("decrypting with the 23:59:59 update instead: %s\n",
              garbage == message ? "OPENED (bug!)" : "garbage, as intended");
  return garbage == message ? 1 : 0;
}
