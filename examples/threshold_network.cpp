// A k-of-n threshold time-server network (the architecture drand/tlock
// later deployed; our k-of-n generalization of the paper's §5.3.5).
//
// Five independent operators each hold a share of the network secret.
// Every minute each live operator broadcasts a partial update; any three
// partials combine into the ordinary s·H1(T) update, so senders and
// receivers see a SINGLE logical time server that no two colluding
// operators can impersonate and no two crashed operators can halt.
//
// Build & run:  ./examples/threshold_network
#include <cstdio>
#include <vector>

#include "core/threshold.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  core::ThresholdTre network(params::load("tre-512"));
  hashing::HmacDrbg rng(to_bytes("threshold-example"));

  // Dealer ceremony: 5 operators, threshold 3.
  auto [net_key, shares] = network.setup(core::ThresholdConfig{5, 3}, rng);
  std::printf("network of %zu operators, threshold %zu; group key published\n",
              net_key.config.n, net_key.config.k);

  // An ordinary user binds to the GROUP key — the sharing is invisible.
  const core::TreScheme& scheme = network.scheme();
  core::UserKeyPair user = scheme.user_keygen(net_key.group, rng);
  const char* release = "2030-01-01T00:00:00Z";
  Bytes msg = to_bytes("released by any 3 of 5 operators");
  core::Ciphertext ct = scheme.encrypt(msg, user.pub, net_key.group, release, rng);
  std::printf("message sealed for %s\n\n", release);

  // The release minute arrives. Operators 2 and 5 are down; 4 is
  // malicious and publishes garbage.
  std::vector<core::PartialUpdate> received;
  for (size_t op : {1u, 3u, 4u}) {
    core::PartialUpdate p = network.issue_partial(shares[op - 1], release);
    if (op == 4) p.sig = p.sig.doubled();  // corrupted
    bool ok = network.verify_partial(net_key, p);
    std::printf("operator %zu broadcast a partial: %s\n", op,
                ok ? "valid" : "REJECTED (bad signature)");
    if (ok) received.push_back(p);
  }

  // Two valid partials are not enough...
  try {
    (void)network.combine(net_key, received);
    std::printf("ERROR: combined below threshold\n");
    return 1;
  } catch (const Error&) {
    std::printf("2 valid partials < threshold 3 -> cannot combine yet\n");
  }

  // ...operator 2 comes back online.
  received.push_back(network.issue_partial(shares[1], release));
  std::printf("operator 2 recovered and broadcast its partial\n");
  core::KeyUpdate update = network.combine(net_key, received);
  std::printf("combined update self-authenticates: %s\n",
              scheme.verify_update(net_key.group, update) ? "yes" : "no");

  Bytes opened = scheme.decrypt(ct, user.a, update);
  std::printf("decrypted: %.*s\n", static_cast<int>(opened.size()),
              reinterpret_cast<const char*>(opened.data()));
  return opened == msg ? 0 : 1;
}
