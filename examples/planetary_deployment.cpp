// Planetary deployment: everything composed.
//
//   * a 3-of-5 THRESHOLD operator network stands in for the single time
//     server (no operator pair can cheat, two may crash);
//   * the combined updates are pushed to regional MIRRORS over a
//     simulated WAN (latency + jitter);
//   * receivers on three continents poll their regional mirror and
//     decrypt — the origin serves no reads and knows no receivers,
//     reproducing the paper's GPS analogy end to end.
//
// Build & run:  ./examples/planetary_deployment
#include <cstdio>
#include <optional>
#include <vector>

#include "core/threshold.h"
#include "hashing/drbg.h"
#include "simnet/mirrors.h"
#include "timeserver/timespec.h"

int main() {
  using namespace tre;
  auto params = params::load("tre-toy-96");
  core::ThresholdTre network(params);
  const core::TreScheme& scheme = network.scheme();
  hashing::HmacDrbg rng(to_bytes("planetary-example"));

  // Operator ceremony.
  auto [net_key, shares] = network.setup(core::ThresholdConfig{5, 3}, rng);
  std::printf("time service: 5 operators, threshold 3\n");

  // Regional infrastructure over a simulated WAN.
  server::Timeline timeline(0);
  simnet::Network wan(timeline, to_bytes("planetary-wan"));
  simnet::MirroredArchive mirrors(params, wan, timeline, /*mirror_count=*/3,
                                  simnet::LinkSpec{.base_delay = 1, .jitter = 2});
  const char* region_names[3] = {"americas", "europe", "asia"};

  // Receivers: one per region, each with mail releasing at t=60.
  const server::TimeSpec release = server::TimeSpec::from_unix(60);
  struct Receiver {
    core::UserKeyPair keys;
    core::Ciphertext mail;
    simnet::NodeId node;
    std::optional<Bytes> opened;
  };
  std::vector<Receiver> receivers;
  for (int r = 0; r < 3; ++r) {
    core::UserKeyPair keys = scheme.user_keygen(net_key.group, rng);
    Bytes msg = to_bytes(std::string("briefing for ") + region_names[r]);
    core::Ciphertext mail =
        scheme.encrypt(msg, keys.pub, net_key.group, release.canonical(), rng);
    receivers.push_back(Receiver{keys, mail,
                                 wan.add_node(std::string("rx-") + region_names[r]),
                                 std::nullopt});
  }
  std::printf("3 regional receivers provisioned; mail sealed for %s\n",
              release.canonical().c_str());

  // At the release instant: three operators are up, partials combine,
  // the update goes to the mirrors.
  timeline.schedule(60, [&] {
    std::vector<core::PartialUpdate> partials = {
        network.issue_partial(shares[0], release.canonical()),
        network.issue_partial(shares[2], release.canonical()),
        network.issue_partial(shares[4], release.canonical()),
    };
    for (const auto& p : partials) {
      if (!network.verify_partial(net_key, p)) {
        std::printf("operator %zu partial invalid!\n", p.index);
      }
    }
    core::KeyUpdate update = network.combine(net_key, partials);
    std::printf("t=%lld: operators 1,3,5 combined the update (2 and 4 down); "
                "pushing to mirrors\n",
                static_cast<long long>(timeline.now()));
    mirrors.publish(update);
  });

  // Receivers poll their regional mirror from the release instant.
  for (size_t r = 0; r < receivers.size(); ++r) {
    timeline.schedule(60, [&, r] {
      mirrors.fetch(receivers[r].node, r, release.canonical(),
                    simnet::LinkSpec{.base_delay = 1, .jitter = 1},
                    /*poll_period=*/3, /*max_polls=*/10,
                    [&, r](const core::KeyUpdate& update) {
                      if (!scheme.verify_update(net_key.group, update)) return;
                      receivers[r].opened =
                          scheme.decrypt(receivers[r].mail, receivers[r].keys.a, update);
                      std::printf("t=%lld: %s decrypted: %.*s\n",
                                  static_cast<long long>(timeline.now()),
                                  wan.name_of(receivers[r].node).c_str(),
                                  static_cast<int>(receivers[r].opened->size()),
                                  reinterpret_cast<const char*>(
                                      receivers[r].opened->data()));
                    });
    });
  }

  timeline.advance_to(120);

  bool all_opened = true;
  for (size_t r = 0; r < receivers.size(); ++r) {
    Bytes expect = to_bytes(std::string("briefing for ") + region_names[r]);
    if (!receivers[r].opened || *receivers[r].opened != expect) all_opened = false;
  }
  std::printf("\norigin served %llu read requests (mirrors absorbed the rest); "
              "WAN carried %llu bytes\n",
              static_cast<unsigned long long>(mirrors.stats().origin_requests),
              static_cast<unsigned long long>(wan.stats().bytes_carried));
  std::printf("%s\n", all_opened ? "all regions released on time"
                                 : "RELEASE FAILED somewhere");
  return all_opened ? 0 : 1;
}
