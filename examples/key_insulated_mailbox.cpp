// Key-insulated timed mailbox (paper §5.3.3).
//
// The receiver's long-term secret lives on a "smart card"; the laptop
// that actually decrypts mail only ever holds per-epoch keys derived on
// the card from each day's key update. When the laptop is compromised,
// the attacker gets exactly one epoch's mail — earlier and later epochs,
// and the long-term key, stay safe.
//
// Build & run:  ./examples/key_insulated_mailbox
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/tre.h"
#include "hashing/drbg.h"

int main() {
  using namespace tre;
  core::TreScheme scheme(params::load("tre-512"));
  hashing::HmacDrbg rng(to_bytes("insulated-example"));

  core::ServerKeyPair time_server = scheme.server_keygen(rng);
  core::UserKeyPair card_holder = scheme.user_keygen(time_server.pub, rng);

  const std::vector<std::string> days = {"2005-06-06", "2005-06-07", "2005-06-08"};

  // Senders queue one message per day.
  std::map<std::string, core::Ciphertext> mailbox;
  for (const auto& day : days) {
    mailbox.emplace(day, scheme.encrypt(to_bytes("mail for " + day),
                                        card_holder.pub, time_server.pub, day, rng));
  }

  // Each day: update arrives -> smart card derives the epoch key ->
  // laptop decrypts with the epoch key only (never sees `a`).
  std::map<std::string, core::EpochKey> laptop_keys;
  for (const auto& day : days) {
    core::KeyUpdate update = scheme.issue_update(time_server, day);
    laptop_keys.emplace(day, scheme.derive_epoch_key(card_holder.a, update));
    Bytes mail = scheme.decrypt_with_epoch_key(mailbox.at(day), laptop_keys.at(day));
    std::printf("%s laptop reads: %.*s\n", day.c_str(),
                static_cast<int>(mail.size()),
                reinterpret_cast<const char*>(mail.data()));
  }

  // Compromise: the attacker steals the laptop with day-2's epoch key.
  const core::EpochKey& stolen = laptop_keys.at("2005-06-07");
  std::printf("\nattacker steals the %s epoch key...\n", stolen.tag.c_str());
  Bytes day2 = scheme.decrypt_with_epoch_key(mailbox.at("2005-06-07"), stolen);
  std::printf("  day-2 mail: %s\n",
              day2 == to_bytes("mail for 2005-06-07") ? "EXPOSED (expected: that epoch is lost)"
                                                      : "safe");
  // But the same key is useless against other days:
  for (const char* other : {"2005-06-06", "2005-06-08"}) {
    Bytes attempt = scheme.decrypt_with_epoch_key(mailbox.at(other), stolen);
    bool exposed = attempt == to_bytes(std::string("mail for ") + other);
    std::printf("  %s mail: %s\n", other, exposed ? "EXPOSED (bug!)" : "safe");
    if (exposed) return 1;
  }
  std::printf("containment holds: one epoch key leaks one epoch only\n");
  return 0;
}
