// Sealed-bid government tender (the paper's §1 motivating scenario).
//
// Bidders submit timed-release-encrypted bids to the tender office well
// before the deadline. Nobody — not the office, not rival bidders, not
// the time server — can open any bid before the deadline. When the time
// server broadcasts the deadline's key update, all bids open at once.
// The CCA (Fujisaki-Okamoto) variant is used so a corrupt clerk cannot
// maul a rival's ciphertext into a related bid.
//
// Build & run:  ./examples/sealed_bid
#include <cstdio>
#include <string>
#include <vector>

#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/timeserver.h"

int main() {
  using namespace tre;
  auto params = params::load("tre-512");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("sealed-bid-example"));

  // The tender office opens at 2005-06-01; bids unlock at 12:00 on 06-06.
  server::Timeline timeline(server::TimeSpec::parse("2005-06-01")->unix_seconds());
  server::TimeServer clock_authority(params, timeline, server::Granularity::kHour, rng);

  // The tender office is the *receiver* of all bids.
  core::UserKeyPair office = scheme.user_keygen(clock_authority.public_key(), rng);
  const std::string deadline = "2005-06-06T12Z";

  struct Bid {
    std::string bidder;
    long amount;
    core::FoCiphertext sealed;
  };
  std::vector<Bid> bids;
  for (const auto& [bidder, amount] : std::initializer_list<std::pair<const char*, long>>{
           {"Acme Corp", 1'250'000},
           {"Bolt Ltd", 1'180'000},
           {"Carver & Sons", 1'310'000}}) {
    std::string plaintext = std::string(bidder) + " bids $" + std::to_string(amount);
    bids.push_back(Bid{bidder, amount,
                       scheme.encrypt_fo(to_bytes(plaintext), office.pub,
                                         clock_authority.public_key(), deadline, rng)});
    std::printf("%-14s submitted a sealed bid (%zu bytes)\n", bidder,
                bids.back().sealed.to_bytes().size());
  }

  // Days pass; the office holds the ciphertexts but cannot open them:
  // the server refuses to issue the deadline update early.
  timeline.advance_to(server::TimeSpec::parse("2005-06-05")->unix_seconds());
  clock_authority.tick();
  try {
    (void)clock_authority.issue_for(*server::TimeSpec::parse(deadline));
    std::printf("ERROR: server issued a future update\n");
    return 1;
  } catch (const Error&) {
    std::printf("\n06-05: office asks for the deadline update -> server refuses\n");
  }

  // The deadline passes.
  timeline.advance_to(server::TimeSpec::parse(deadline)->unix_seconds());
  clock_authority.tick();
  core::KeyUpdate update = *clock_authority.archive().find(deadline);
  std::printf("06-06 12:00: update published (%zu bytes, one for all bidders)\n\n",
              update.to_bytes().size());

  long best = -1;
  std::string winner;
  for (const auto& bid : bids) {
    auto opened =
        scheme.decrypt_fo(bid.sealed, office.a, update, clock_authority.public_key());
    if (!opened) {
      std::printf("%-14s ciphertext invalid (tampered?)\n", bid.bidder.c_str());
      continue;
    }
    std::printf("opened: %.*s\n", static_cast<int>(opened->size()),
                reinterpret_cast<const char*>(opened->data()));
    if (bid.amount > best) {
      best = bid.amount;
      winner = bid.bidder;
    }
  }
  std::printf("\nwinner: %s at $%ld\n", winner.c_str(), best);
  return winner == "Carver & Sons" ? 0 : 1;
}
