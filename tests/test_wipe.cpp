// Zeroization: core::wipe must actually clear key material, on both
// backends, for every wipeable type. Scalar limbs are snapshotted, wiped
// and re-read through volatile pointers (so a compiler cannot elide the
// stores); point-holding types are checked for their structural reset.
#include <gtest/gtest.h>

#include "bls12/threshold381.h"
#include "bls12/tre381.h"
#include "core/tre.h"
#include "core/wipe.h"
#include "hashing/drbg.h"
#include "params/params.h"

namespace tre::core {
namespace {

/// Volatile re-read of a scalar's limbs: returns the OR of all limbs, so
/// zero means every byte of the secret really was cleared in memory.
std::uint64_t volatile_or(const Scalar& s) {
  volatile const std::uint64_t* p = s.w.data();
  std::uint64_t acc = 0;
  for (size_t i = 0; i < s.w.size(); ++i) acc |= p[i];
  return acc;
}

TEST(Wipe, ScalarLimbsAllZero) {
  Scalar s = Scalar::from_u64(0xdeadbeefcafef00dULL);
  ASSERT_NE(volatile_or(s), 0u);
  wipe(s);
  EXPECT_EQ(volatile_or(s), 0u);
}

class Wipe512 : public ::testing::Test {
 protected:
  Wipe512()
      : scheme_(params::load("tre-toy-96")), rng_(to_bytes("wipe-512")) {}

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
};

TEST_F(Wipe512, ServerKeyPair) {
  ServerKeyPair server = scheme_.server_keygen(rng_);
  ASSERT_NE(volatile_or(server.s), 0u);
  wipe(server);
  EXPECT_EQ(volatile_or(server.s), 0u);
}

TEST_F(Wipe512, UserKeyPair) {
  ServerKeyPair server = scheme_.server_keygen(rng_);
  UserKeyPair user = scheme_.user_keygen(server.pub, rng_);
  ASSERT_NE(volatile_or(user.a), 0u);
  wipe(user);
  EXPECT_EQ(volatile_or(user.a), 0u);
}

TEST_F(Wipe512, EpochKey) {
  ServerKeyPair server = scheme_.server_keygen(rng_);
  UserKeyPair user = scheme_.user_keygen(server.pub, rng_);
  KeyUpdate update = scheme_.issue_update(server, "T");
  EpochKey key = scheme_.derive_epoch_key(user.a, update);
  ASSERT_FALSE(key.d.is_infinity());
  ASSERT_FALSE(key.tag.empty());
  wipe(key);
  EXPECT_TRUE(key.d.is_infinity());
  EXPECT_TRUE(key.tag.empty());
}

class Wipe381 : public ::testing::Test {
 protected:
  Wipe381() : scheme_(bls12::make_tre381()), rng_(to_bytes("wipe-381")) {}

  bls12::Tre381Scheme scheme_;
  hashing::HmacDrbg rng_;
};

TEST_F(Wipe381, ServerKeyPair) {
  auto server = scheme_.server_keygen(rng_);
  ASSERT_NE(volatile_or(server.s), 0u);
  wipe(server);
  EXPECT_EQ(volatile_or(server.s), 0u);
}

TEST_F(Wipe381, UserKeyPair) {
  auto server = scheme_.server_keygen(rng_);
  auto user = scheme_.user_keygen(server.pub, rng_);
  ASSERT_NE(volatile_or(user.a), 0u);
  wipe(user);
  EXPECT_EQ(volatile_or(user.a), 0u);
}

TEST_F(Wipe381, EpochKey) {
  auto server = scheme_.server_keygen(rng_);
  auto user = scheme_.user_keygen(server.pub, rng_);
  auto update = scheme_.issue_update(server, "T");
  auto key = scheme_.derive_epoch_key(user.a, update);
  ASSERT_FALSE(key.d.inf);
  ASSERT_FALSE(key.tag.empty());
  wipe(key);
  EXPECT_TRUE(key.d.inf);
  EXPECT_TRUE(key.tag.empty());
  EXPECT_TRUE(key.d.x.is_zero());
  EXPECT_TRUE(key.d.y.is_zero());
}

TEST_F(Wipe381, ThresholdShareAndGroupKey) {
  bls12::Threshold381 service(bls12::Bls12Ctx::get());
  auto [key, shares] = service.setup({5, 3}, rng_);
  ASSERT_FALSE(shares.empty());

  for (auto& share : shares) {
    ASSERT_NE(volatile_or(share.share), 0u);
    threshold::wipe(share);
    EXPECT_EQ(volatile_or(share.share), 0u);
    EXPECT_EQ(share.index, 0u);
  }

  ASSERT_FALSE(key.group.sg.inf);
  ASSERT_EQ(key.pub_shares.size(), 5u);
  threshold::wipe(key);
  EXPECT_TRUE(key.group.sg.inf);
  EXPECT_TRUE(key.pub_shares.empty());
  EXPECT_EQ(key.config.n, 0u);
  EXPECT_EQ(key.config.k, 0u);
}

}  // namespace
}  // namespace tre::core
