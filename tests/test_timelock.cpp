// The hybrid time-lock fallback lane: resumable RSW solving with
// checkpoints, replay verification and the mod-c check lane, plus the
// HybridEnvelope that opens bit-identically through either the epoch-key
// path or the puzzle path, on both backends.
#include <gtest/gtest.h>

#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "params/params.h"
#include "timelock/hybrid.h"
#include "timelock/solver.h"

namespace tre::timelock {
namespace {

using baselines::Rsw;
using baselines::RswProgress;
using baselines::RswPuzzle;
using baselines::RswTrapdoor;

constexpr size_t kTestModulusBits = 128;  // tiny modulus: tests, not security
constexpr std::uint64_t kTestSquarings = 600;

RswPuzzle make_puzzle(std::uint64_t t = kTestSquarings,
                      std::string_view seed = "timelock-tests") {
  hashing::HmacDrbg rng(to_bytes(seed));
  RswTrapdoor td = Rsw::keygen(rng, kTestModulusBits);
  Bytes key = to_bytes("0123456789abcdef0123456789abcdef");  // 32 bytes
  return Rsw::seal(td, key, t, rng);
}

// --- Resumable solve_with_budget (satellite fix) ----------------------------

TEST(RswResume, BudgetedCallsShareOneChain) {
  RswPuzzle puzzle = make_puzzle();
  Bytes straight = Rsw::solve(puzzle);

  RswProgress progress;
  bool done = false;
  Bytes key;
  int calls = 0;
  while (!done) {
    key = Rsw::solve_with_budget(puzzle, 64, &done, &progress);
    ++calls;
    ASSERT_LE(progress.steps, puzzle.t);
  }
  EXPECT_EQ(key, straight);
  EXPECT_EQ(progress.steps, puzzle.t);
  // 600 steps at 64 per call: 10 calls, i.e. the budget really carried
  // over instead of restarting from the base each time.
  EXPECT_EQ(calls, 10);
}

TEST(RswResume, OneShotOverloadStillRestarts) {
  RswPuzzle puzzle = make_puzzle();
  bool done = true;
  Bytes out = Rsw::solve_with_budget(puzzle, puzzle.t - 1, &done);
  EXPECT_FALSE(done);
  EXPECT_TRUE(out.empty());
  out = Rsw::solve_with_budget(puzzle, puzzle.t, &done);
  EXPECT_TRUE(done);
  EXPECT_EQ(out, Rsw::solve(puzzle));
}

TEST(RswResume, ProgressPastTotalThrows) {
  RswPuzzle puzzle = make_puzzle();
  RswProgress progress;
  progress.steps = puzzle.t + 1;
  bool done = false;
  EXPECT_THROW(Rsw::solve_with_budget(puzzle, 1, &done, &progress), Error);
}

// --- Puzzle wire format ------------------------------------------------------

TEST(RswWire, RoundTrip) {
  RswPuzzle puzzle = make_puzzle();
  Bytes wire = puzzle.to_bytes();
  RswPuzzle back = RswPuzzle::from_bytes(wire);
  EXPECT_TRUE(back == puzzle);
}

TEST(RswWire, GarbageCorpusNeverParses) {
  RswPuzzle puzzle = make_puzzle();
  Bytes wire = puzzle.to_bytes();
  EXPECT_FALSE(RswPuzzle::try_from_bytes({}).has_value());
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(RswPuzzle::try_from_bytes(truncated).has_value());
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(RswPuzzle::try_from_bytes(trailing).has_value());
  // An even modulus must be rejected (Montgomery precondition).
  Bytes even = wire;
  even[2 + (wire[0] << 8 | wire[1]) - 1] &= 0xfe;  // clear n's low bit
  EXPECT_FALSE(RswPuzzle::try_from_bytes(even).has_value());
}

// --- Checkpointed solver -----------------------------------------------------

TEST(Solver, MatchesBaselineSolve) {
  RswPuzzle puzzle = make_puzzle();
  RswSolver solver(puzzle);
  while (!solver.done()) solver.advance(100);
  EXPECT_TRUE(solver.validate());
  EXPECT_EQ(solver.key(), Rsw::solve(puzzle));
}

TEST(Solver, KeyBeforeDoneThrows) {
  RswPuzzle puzzle = make_puzzle();
  RswSolver solver(puzzle);
  solver.advance(1);
  EXPECT_THROW(solver.key(), Error);
}

TEST(Solver, ResumeAfterKillMatchesStraightThrough) {
  RswPuzzle puzzle = make_puzzle();

  RswSolver straight(puzzle);
  while (!straight.done()) straight.advance(1000);
  Bytes expected = straight.key();

  // Simulate a kill at an arbitrary point: checkpoint, drop the solver,
  // restore in a "new process", finish.
  RswSolver first(puzzle);
  first.advance(237);
  Bytes ckpt = first.checkpoint();

  RswSolver resumed = RswSolver::restore(puzzle, ckpt);
  EXPECT_EQ(resumed.steps_done(), 237u);
  while (!resumed.done()) resumed.advance(101);
  EXPECT_EQ(resumed.key(), expected);
}

TEST(Solver, CheckpointEveryStepStillConsistent) {
  RswPuzzle puzzle = make_puzzle(40);
  RswSolver solver(puzzle);
  Bytes ckpt = solver.checkpoint();
  while (!solver.done()) {
    RswSolver restored = RswSolver::restore(puzzle, ckpt);
    ASSERT_EQ(restored.steps_done(), solver.steps_done());
    solver.advance(1);
    ckpt = solver.checkpoint();
  }
  EXPECT_EQ(RswSolver::restore(puzzle, ckpt).key(), Rsw::solve(puzzle));
}

TEST(Solver, RestoreRejectsBitFlips) {
  RswPuzzle puzzle = make_puzzle();
  RswSolver solver(puzzle);
  solver.advance(300);
  Bytes ckpt = solver.checkpoint();
  // Any single corrupted byte must be rejected (integrity tag first,
  // replay/check-lane behind it). Probe a spread of positions.
  for (size_t pos = 0; pos < ckpt.size(); pos += 37) {
    Bytes bad = ckpt;
    bad[pos] ^= 0x40;
    EXPECT_THROW(RswSolver::restore(puzzle, bad), Error) << "pos=" << pos;
  }
}

TEST(Solver, RestoreRejectsWrongPuzzle) {
  RswPuzzle puzzle = make_puzzle();
  RswPuzzle other = make_puzzle(kTestSquarings, "different-seed");
  RswSolver solver(puzzle);
  solver.advance(50);
  EXPECT_THROW(RswSolver::restore(other, solver.checkpoint()), Error);
}

TEST(Solver, CheckLaneCatchesComputeCorruption) {
  RswPuzzle puzzle = make_puzzle();
  RswSolver solver(puzzle);
  solver.advance(500);
  EXPECT_TRUE(solver.validate());
  solver.corrupt_state_for_testing();
  EXPECT_FALSE(solver.validate());
  while (!solver.done()) solver.advance(1000);
  EXPECT_THROW(solver.key(), Error);  // refuses to unseal a corrupt chain
}

TEST(Solver, ReplayCatchesCorruptionEvenWithLaneDisabled) {
  SolverOptions opts;
  opts.validate_lane = false;
  RswPuzzle puzzle = make_puzzle();
  RswSolver solver(puzzle, opts);
  solver.advance(400);
  solver.corrupt_state_for_testing();
  // The corrupted head no longer matches the anchor replay.
  EXPECT_THROW(RswSolver::restore(puzzle, solver.checkpoint(), opts), Error);
}

// --- Hybrid envelope ---------------------------------------------------------

class Hybrid512 : public ::testing::Test {
 protected:
  Hybrid512()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("hybrid-512")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)),
        update_(scheme_.issue_update(server_, "T")) {}

  FallbackParams fallback() const {
    return FallbackParams{kTestSquarings, kTestModulusBits};
  }

  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
  core::UserKeyPair user_;
  core::KeyUpdate update_;
};

TEST_F(Hybrid512, BothPathsOpenBitIdentically) {
  Bytes msg = to_bytes("open via server OR via squarings");
  for (core::Mode inner : {core::Mode::kBasic, core::Mode::kFo, core::Mode::kReact}) {
    auto env = seal_hybrid(scheme_, inner, msg, user_.pub, server_.pub, "T",
                           fallback(), rng_);
    auto via_server = open_hybrid(scheme_, env, user_.a, update_, server_.pub);
    ASSERT_TRUE(via_server.has_value()) << core::mode_name(inner);
    EXPECT_EQ(*via_server, msg);

    auto via_puzzle = open_hybrid_via_puzzle(env);
    ASSERT_TRUE(via_puzzle.has_value()) << core::mode_name(inner);
    EXPECT_EQ(*via_puzzle, *via_server);
  }
}

TEST_F(Hybrid512, WireRoundTripAndModeByte) {
  Bytes msg = to_bytes("wire");
  auto env = seal_hybrid(scheme_, core::Mode::kFo, msg, user_.pub, server_.pub, "T",
                         fallback(), rng_);
  Bytes wire = env.to_bytes();
  EXPECT_EQ(wire[0], static_cast<std::uint8_t>(core::Mode::kHybrid));
  // core's SealedCiphertext parser redirects hybrid bytes here.
  EXPECT_THROW(core::SealedCiphertext::from_bytes(scheme_.params(), wire), Error);

  auto back = BasicHybridEnvelope<core::Tre512Backend>::from_bytes(
      scheme_.params(), wire);
  auto out = open_hybrid(scheme_, back, user_.a, update_, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST_F(Hybrid512, TamperFailsClosedOnBothPaths) {
  Bytes msg = to_bytes("tamper target");
  auto env = seal_hybrid(scheme_, core::Mode::kFo, msg, user_.pub, server_.pub, "T",
                         fallback(), rng_);
  auto tampered = env;
  tampered.body[0] ^= 1;
  EXPECT_FALSE(open_hybrid(scheme_, tampered, user_.a, update_, server_.pub));
  EXPECT_FALSE(open_hybrid_via_puzzle(tampered));

  // Splicing the puzzle lane from a different envelope breaks the MAC
  // binding even though each lane is individually well-formed.
  auto env2 = seal_hybrid(scheme_, core::Mode::kFo, msg, user_.pub, server_.pub,
                          "T", fallback(), rng_);
  auto spliced = env;
  spliced.puzzle = env2.puzzle;
  EXPECT_FALSE(open_hybrid(scheme_, spliced, user_.a, update_, server_.pub));
}

TEST_F(Hybrid512, WrongEpochKeyFailsClosed) {
  Bytes msg = to_bytes("wrong epoch");
  auto env = seal_hybrid(scheme_, core::Mode::kFo, msg, user_.pub, server_.pub, "T",
                         fallback(), rng_);
  auto wrong_update = scheme_.issue_update(server_, "T+1");
  EXPECT_FALSE(open_hybrid(scheme_, env, user_.a, wrong_update, server_.pub));
}

TEST_F(Hybrid512, GarbageWireNeverParses) {
  Bytes msg = to_bytes("garbage");
  auto env = seal_hybrid(scheme_, core::Mode::kReact, msg, user_.pub, server_.pub,
                         "T", fallback(), rng_);
  Bytes wire = env.to_bytes();
  using Envelope = BasicHybridEnvelope<core::Tre512Backend>;
  EXPECT_FALSE(Envelope::try_from_bytes(scheme_.params(), {}).has_value());
  Bytes wrong_mode = wire;
  wrong_mode[0] = 1;
  EXPECT_FALSE(Envelope::try_from_bytes(scheme_.params(), wrong_mode).has_value());
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(Envelope::try_from_bytes(scheme_.params(), truncated).has_value());
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(Envelope::try_from_bytes(scheme_.params(), trailing).has_value());
}

TEST_F(Hybrid512, SolverDrivenFallbackWithCheckpointKill) {
  Bytes msg = to_bytes("kill -9 midway");
  auto env = seal_hybrid(scheme_, core::Mode::kFo, msg, user_.pub, server_.pub, "T",
                         fallback(), rng_);
  RswSolver first(env.puzzle);
  first.advance(333);
  Bytes ckpt = first.checkpoint();
  RswSolver resumed = RswSolver::restore(env.puzzle, ckpt);
  while (!resumed.done()) resumed.advance(97);
  auto out = open_hybrid_with_key(env, resumed.key());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(Hybrid381, BothPathsOpenBitIdentically) {
  bls12::Tre381Scheme scheme = bls12::make_tre381();
  hashing::HmacDrbg rng(to_bytes("hybrid-381"));
  auto server = scheme.server_keygen(rng);
  auto user = scheme.user_keygen(server.pub, rng);
  auto update = scheme.issue_update(server, "T");

  Bytes msg = to_bytes("hybrid on bls12-381");
  auto env = seal_hybrid(scheme, core::Mode::kReact, msg, user.pub, server.pub, "T",
                         FallbackParams{kTestSquarings, kTestModulusBits}, rng);
  auto via_server = open_hybrid(scheme, env, user.a, update, server.pub);
  ASSERT_TRUE(via_server.has_value());
  EXPECT_EQ(*via_server, msg);
  auto via_puzzle = open_hybrid_via_puzzle(env);
  ASSERT_TRUE(via_puzzle.has_value());
  EXPECT_EQ(*via_puzzle, msg);

  // Wire roundtrip on the 381 backend too.
  auto back = BasicHybridEnvelope<bls12::Bls381Backend>::from_bytes(
      scheme.params(), env.to_bytes());
  auto out = open_hybrid(scheme, back, user.a, update, server.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

}  // namespace
}  // namespace tre::timelock
