// The unified seal/open API (core::Mode + SealedCiphertext): roundtrips
// in every flavour, bit-identical agreement with the legacy per-flavour
// entry points under the same randomness, the 1-byte mode header wire
// format, and the tamper matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <variant>

#include "core/tre.h"
#include "hashing/drbg.h"
#include "obs/metrics.h"

namespace tre::core {
namespace {

constexpr Mode kAllModes[] = {Mode::kBasic, Mode::kFo, Mode::kReact};

class SealOpen : public ::testing::Test {
 protected:
  SealOpen()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("seal-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)),
        update_(scheme_.issue_update(server_, "T")) {}

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair server_;
  UserKeyPair user_;
  KeyUpdate update_;
};

TEST_F(SealOpen, RoundTripEveryMode) {
  Bytes msg = to_bytes("release at T");
  for (Mode mode : kAllModes) {
    SealedCiphertext sc = scheme_.seal(mode, msg, user_.pub, server_.pub, "T", rng_);
    EXPECT_EQ(sc.mode(), mode);
    auto out = scheme_.open(sc, user_.a, update_, server_.pub);
    ASSERT_TRUE(out.has_value()) << mode_name(mode);
    EXPECT_EQ(*out, msg) << mode_name(mode);
  }
}

TEST_F(SealOpen, FreeFunctionSpellingsAgree) {
  Bytes msg = to_bytes("namespace-level API");
  SealedCiphertext sc = seal(scheme_, Mode::kReact, msg, user_.pub, server_.pub, "T", rng_);
  auto out = open(scheme_, sc, user_.a, update_, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST_F(SealOpen, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kBasic), "basic");
  EXPECT_STREQ(mode_name(Mode::kFo), "fo");
  EXPECT_STREQ(mode_name(Mode::kReact), "react");
}

TEST_F(SealOpen, BitIdenticalToLegacyEntryPoints) {
  // Same message, same keys, same DRBG seed: seal() must consume the
  // randomness exactly like the legacy entry point it wraps, and the
  // sealed wire must be the 1-byte mode header + the legacy encoding.
  Bytes msg = to_bytes("determinism check");
  auto expect_header_plus_legacy = [&](const SealedCiphertext& sc, const Bytes& legacy,
                                       std::uint8_t mode_byte) {
    Bytes wire = sc.to_bytes();
    ASSERT_FALSE(wire.empty());
    EXPECT_EQ(wire[0], mode_byte);
    EXPECT_EQ(Bytes(wire.begin() + 1, wire.end()), legacy);
  };

  {
    hashing::HmacDrbg a(to_bytes("det-basic")), b(to_bytes("det-basic"));
    Bytes legacy = scheme_.encrypt(msg, user_.pub, server_.pub, "T", a).to_bytes();
    SealedCiphertext sc = scheme_.seal(Mode::kBasic, msg, user_.pub, server_.pub, "T", b);
    EXPECT_EQ(std::get<Ciphertext>(sc.body).to_bytes(), legacy);
    expect_header_plus_legacy(sc, legacy, 1);
  }
  {
    hashing::HmacDrbg a(to_bytes("det-fo")), b(to_bytes("det-fo"));
    Bytes legacy = scheme_.encrypt_fo(msg, user_.pub, server_.pub, "T", a).to_bytes();
    SealedCiphertext sc = scheme_.seal(Mode::kFo, msg, user_.pub, server_.pub, "T", b);
    EXPECT_EQ(std::get<FoCiphertext>(sc.body).to_bytes(), legacy);
    expect_header_plus_legacy(sc, legacy, 2);
  }
  {
    hashing::HmacDrbg a(to_bytes("det-react")), b(to_bytes("det-react"));
    Bytes legacy = scheme_.encrypt_react(msg, user_.pub, server_.pub, "T", a).to_bytes();
    SealedCiphertext sc = scheme_.seal(Mode::kReact, msg, user_.pub, server_.pub, "T", b);
    EXPECT_EQ(std::get<ReactCiphertext>(sc.body).to_bytes(), legacy);
    expect_header_plus_legacy(sc, legacy, 3);
  }
}

TEST_F(SealOpen, OpenAgreesWithLegacyDecrypt) {
  // A ciphertext made by a legacy entry point, wrapped by hand into the
  // sealed variant, opens to the same plaintext the legacy decrypt gives.
  Bytes msg = to_bytes("cross-API interop");
  FoCiphertext fo = scheme_.encrypt_fo(msg, user_.pub, server_.pub, "T", rng_);
  SealedCiphertext sc{fo};
  auto via_open = scheme_.open(sc, user_.a, update_, server_.pub);
  auto via_legacy = scheme_.decrypt_fo(fo, user_.a, update_, server_.pub);
  ASSERT_TRUE(via_open.has_value());
  ASSERT_TRUE(via_legacy.has_value());
  EXPECT_EQ(*via_open, *via_legacy);
  EXPECT_EQ(*via_open, msg);
}

TEST_F(SealOpen, WireRoundTripEveryMode) {
  Bytes msg = to_bytes("wire");
  for (Mode mode : kAllModes) {
    SealedCiphertext sc = scheme_.seal(mode, msg, user_.pub, server_.pub, "T", rng_);
    Bytes wire = sc.to_bytes();
    SealedCiphertext parsed = SealedCiphertext::from_bytes(scheme_.params(), wire);
    EXPECT_EQ(parsed.mode(), mode);
    EXPECT_EQ(parsed.to_bytes(), wire);
    auto out = scheme_.open(parsed, user_.a, update_, server_.pub);
    ASSERT_TRUE(out.has_value()) << mode_name(mode);
    EXPECT_EQ(*out, msg);
  }
}

TEST_F(SealOpen, MalformedWireThrowsOrRefuses) {
  EXPECT_THROW((void)SealedCiphertext::from_bytes(scheme_.params(), Bytes{}), Error);
  EXPECT_FALSE(SealedCiphertext::try_from_bytes(scheme_.params(), Bytes{}));
  Bytes unknown_mode = {0x07, 0x01, 0x02};
  EXPECT_THROW((void)SealedCiphertext::from_bytes(scheme_.params(), unknown_mode), Error);
  EXPECT_FALSE(SealedCiphertext::try_from_bytes(scheme_.params(), unknown_mode));
}

TEST_F(SealOpen, TamperMatrix) {
  // Wrong key, wrong update, flipped payload byte: the CCA flavours must
  // refuse; Basic (CPA) must yield NOT-the-plaintext rather than crash.
  Bytes msg = to_bytes("tamper matrix: a message long enough to matter");
  UserKeyPair other_user = scheme_.user_keygen(server_.pub, rng_);
  KeyUpdate wrong_update = scheme_.issue_update(server_, "not-T");

  for (Mode mode : kAllModes) {
    SealedCiphertext sc = scheme_.seal(mode, msg, user_.pub, server_.pub, "T", rng_);

    auto expect_rejected = [&](const std::optional<Bytes>& out, const char* what) {
      if (mode == Mode::kBasic) {
        // No integrity tag in the CPA flavour: garbage, never the message.
        ASSERT_TRUE(out.has_value()) << what;
        EXPECT_NE(*out, msg) << mode_name(mode) << ": " << what;
      } else {
        EXPECT_FALSE(out.has_value()) << mode_name(mode) << ": " << what;
      }
    };

    expect_rejected(scheme_.open(sc, other_user.a, update_, server_.pub), "wrong key");
    expect_rejected(scheme_.open(sc, user_.a, wrong_update, server_.pub), "wrong update");

    Bytes wire = sc.to_bytes();
    wire[wire.size() / 2] ^= 0x40;
    if (auto parsed = SealedCiphertext::try_from_bytes(scheme_.params(), wire)) {
      auto out = scheme_.open(*parsed, user_.a, update_, server_.pub);
      if (out && mode != Mode::kBasic) {
        EXPECT_NE(*out, msg) << mode_name(mode) << ": flipped byte decrypted cleanly";
      }
    }
  }
}

TEST_F(SealOpen, UnknownModeInSealThrows) {
  Bytes msg = to_bytes("m");
  EXPECT_THROW(
      (void)scheme_.seal(static_cast<Mode>(9), msg, user_.pub, server_.pub, "T", rng_),
      Error);
}

TEST_F(SealOpen, KeyCheckSkipStillRoundTrips) {
  Bytes msg = to_bytes("pre-verified key");
  SealedCiphertext sc = scheme_.seal(Mode::kFo, msg, user_.pub, server_.pub, "T", rng_,
                                     KeyCheck::kSkip);
  auto out = scheme_.open(sc, user_.a, update_, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

// --- open_batch --------------------------------------------------------------

TEST_F(SealOpen, OpenBatchMatchesPerItemOpen) {
  // Three ciphertexts per mode, one receiver, one tag: the batch path
  // (shared epoch key, cached Miller lines, folded FO re-encryption
  // check) must produce exactly what per-item open() produces.
  std::vector<SealedCiphertext> cts;
  std::vector<Bytes> msgs;
  for (Mode mode : kAllModes) {
    for (int i = 0; i < 3; ++i) {
      msgs.push_back(to_bytes("batch msg " + std::to_string(msgs.size())));
      cts.push_back(scheme_.seal(mode, msgs.back(), user_.pub, server_.pub, "T", rng_));
    }
  }

  auto batch = scheme_.open_batch(cts, user_.a, update_, server_.pub, rng_);
  ASSERT_EQ(batch.size(), cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    auto single = scheme_.open(cts[i], user_.a, update_, server_.pub);
    ASSERT_TRUE(single.has_value()) << "item " << i;
    ASSERT_TRUE(batch[i].has_value()) << "item " << i;
    EXPECT_EQ(*batch[i], *single) << "item " << i;
    EXPECT_EQ(*batch[i], msgs[i]) << "item " << i;
  }
}

TEST_F(SealOpen, OpenBatchEmptyAndSingleton) {
  EXPECT_TRUE(
      scheme_.open_batch({}, user_.a, update_, server_.pub, rng_).empty());
  Bytes msg = to_bytes("lone");
  std::vector<SealedCiphertext> one = {
      scheme_.seal(Mode::kFo, msg, user_.pub, server_.pub, "T", rng_)};
  auto out = scheme_.open_batch(one, user_.a, update_, server_.pub, rng_);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(out[0].has_value());
  EXPECT_EQ(*out[0], msg);
}

TEST_F(SealOpen, OpenBatchAttributesTamperExactly) {
  // Tampered FO and REACT items fail closed in THEIR slots only; honest
  // siblings in the same batch still open. This is the bisection analogue
  // of the fetcher's Byzantine attribution, receiver-side.
  std::vector<SealedCiphertext> cts;
  std::vector<Bytes> msgs;
  for (int i = 0; i < 6; ++i) {
    Mode mode = (i % 2 == 0) ? Mode::kFo : Mode::kReact;
    msgs.push_back(to_bytes("attrib msg " + std::to_string(i)));
    cts.push_back(scheme_.seal(mode, msgs.back(), user_.pub, server_.pub, "T", rng_));
  }
  std::get<FoCiphertext>(cts[2].body).c_msg[0] ^= 0x01;  // tampered FO
  std::get<ReactCiphertext>(cts[3].body).mac[0] ^= 0x01; // tampered REACT

  auto out = scheme_.open_batch(cts, user_.a, update_, server_.pub, rng_);
  ASSERT_EQ(out.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    if (i == 2 || i == 3) {
      EXPECT_FALSE(out[i].has_value()) << "tampered item " << i;
    } else {
      ASSERT_TRUE(out[i].has_value()) << "honest item " << i;
      EXPECT_EQ(*out[i], msgs[i]) << "honest item " << i;
    }
  }
}

TEST_F(SealOpen, SealAndOpenProbesCount) {
  obs::Registry& g = obs::Registry::global();
  std::uint64_t seals0 = g.counter_value("core.seals");
  std::uint64_t opens0 = g.counter_value("core.opens");
  Bytes msg = to_bytes("count me");
  SealedCiphertext sc = scheme_.seal(Mode::kBasic, msg, user_.pub, server_.pub, "T", rng_);
  (void)scheme_.open(sc, user_.a, update_, server_.pub);
  EXPECT_EQ(g.counter_value("core.seals") - seals0, obs::kEnabled ? 1u : 0u);
  EXPECT_EQ(g.counter_value("core.opens") - opens0, obs::kEnabled ? 1u : 0u);
}

}  // namespace
}  // namespace tre::core
