// tred, end to end: the frame codec under a hostile-bytes corpus, the
// store's equivocation refusal, a LIVE daemon serving real sockets, and
// the full Byzantine fetch pipeline running through SocketTransport
// against a mix of honest and hostile peers.
//
// The acceptance bar mirrors test_fetcher's: across every scenario —
// garbage frames, truncated replies, oversized headers, mid-reply
// disconnects, relabelled and corrupted updates — the client side may
// reject, time out, or fail over, but it must NEVER throw across the
// event loop and NEVER accept bytes that fail the pairing check.
#include "daemon/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "client/fetcher.h"
#include "client/socket_transport.h"
#include "core/tre.h"
#include "daemon/frame.h"
#include "daemon/store.h"
#include "hashing/drbg.h"

namespace tre::daemon {
namespace {

// --- Frame codec: round trips ------------------------------------------------

TEST(Frame, RoundTripsEveryTypeThroughBytewiseFeed) {
  const FrameType types[] = {FrameType::kGetKey,     FrameType::kGetUpdate,
                             FrameType::kGetRange,   FrameType::kPing,
                             FrameType::kKeyReply,   FrameType::kUpdateReply,
                             FrameType::kRangeReply, FrameType::kPong,
                             FrameType::kError};
  Bytes stream;
  for (FrameType t : types) {
    Bytes payload = to_bytes("payload-" + std::to_string(int(t)));
    Bytes f = encode_frame(t, payload);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  // One byte at a time: reassembly must be independent of read boundaries.
  FrameReader reader;
  std::vector<Frame> got;
  for (std::uint8_t b : stream) {
    reader.feed(ByteSpan(&b, 1));
    while (auto f = reader.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), std::size(types));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].type, types[i]);
    EXPECT_EQ(got[i].payload,
              to_bytes("payload-" + std::to_string(int(types[i]))));
  }
  EXPECT_FALSE(reader.broken());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, EmptyPayloadAndMaxPayloadRoundTrip) {
  FrameReader reader;
  Bytes empty = encode_frame(FrameType::kGetKey, {});
  EXPECT_EQ(empty.size(), kHeaderBytes);
  reader.feed(empty);
  auto f = reader.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->payload.empty());

  Bytes big(kMaxPayload, 0xab);
  reader.feed(encode_frame(FrameType::kUpdateReply, big));
  f = reader.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload.size(), kMaxPayload);
  EXPECT_THROW(encode_frame(FrameType::kUpdateReply, Bytes(kMaxPayload + 1)),
               Error);
}

// --- Frame codec: the hostile corpus -----------------------------------------

TEST(Frame, DamageLatchesWithTheRightCause) {
  struct Case {
    const char* name;
    Bytes wire;
    FrameError want;
  };
  Bytes good = encode_frame(FrameType::kPing, to_bytes("x"));
  Bytes bad_magic = good;
  bad_magic[0] = 'X';
  Bytes bad_version = good;
  bad_version[4] = 99;
  Bytes bad_type = good;
  bad_type[5] = 0x42;
  Bytes oversized = good;
  oversized[6] = 0xff;  // be32 length = 0xff....: over any cap
  const Case cases[] = {
      {"magic", bad_magic, FrameError::kBadMagic},
      {"version", bad_version, FrameError::kBadVersion},
      {"type", bad_type, FrameError::kUnknownType},
      {"length", oversized, FrameError::kOversized},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    FrameReader reader;
    reader.feed(c.wire);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.broken());
    EXPECT_EQ(reader.error(), c.want);
    // Latched: more bytes are dropped, no frames ever emerge.
    reader.feed(good);
    EXPECT_FALSE(reader.next().has_value());
  }
}

TEST(Frame, PartialHeaderIsPatienceNotDamage) {
  Bytes wire = encode_frame(FrameType::kPing, to_bytes("abc"));
  FrameReader reader;
  reader.feed(ByteSpan(wire.data(), kHeaderBytes - 1));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.broken());
  reader.feed(ByteSpan(wire.data() + kHeaderBytes - 1,
                       wire.size() - (kHeaderBytes - 1)));
  EXPECT_TRUE(reader.next().has_value());
}

TEST(Frame, RequestReaderEnforcesTheSmallerCap) {
  // The daemon's per-connection readers cap payloads at the REQUEST
  // limit: a 1 MiB frame that would be fine from a server is hostile
  // from a client.
  Bytes wire = encode_frame(FrameType::kGetUpdate, Bytes(kMaxRequestPayload + 1));
  FrameReader reader(kMaxRequestPayload);
  reader.feed(wire);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::kOversized);
}

TEST(Frame, RandomGarbageCorpusNeverThrowsNeverYields) {
  // 256 deterministic random streams: none starts with the magic, so
  // every one must latch kBadMagic (or wait for more header bytes) and
  // produce zero frames — and, critically, zero exceptions.
  hashing::HmacDrbg rng(to_bytes("frame-garbage-corpus"));
  for (int i = 0; i < 256; ++i) {
    Bytes noise = rng.bytes(1 + (i % 64));
    if (noise.size() >= 4 && std::memcmp(noise.data(), kMagic.data(), 4) == 0)
      continue;  // astronomically unlikely; skip rather than special-case
    FrameReader reader;
    EXPECT_NO_THROW({
      reader.feed(noise);
      while (reader.next().has_value()) {
      }
    });
    if (noise.size() >= kHeaderBytes) {
      EXPECT_TRUE(reader.broken());
    }
  }
}

TEST(Frame, TruncationCorpusForPayloadCodecs) {
  // Every strict prefix of a valid payload must parse to nullopt —
  // never throw, never return a half-filled struct.
  Bytes key = encode_key_reply("tre-toy-96", to_bytes("pubkeybytes"));
  for (size_t n = 0; n < key.size(); ++n) {
    if (auto r = try_parse_key_reply(ByteSpan(key.data(), n))) {
      // Prefixes that drop only pub bytes still parse (the codec cannot
      // know the expected point width) — but never with an empty pub.
      EXPECT_FALSE(r->pub.empty());
    }
  }

  std::vector<Bytes> updates = {to_bytes("u-one"), to_bytes("u-two")};
  Bytes range = encode_range_reply(7, 3, updates);
  auto full = try_parse_range_reply(range);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->total, 7u);
  EXPECT_EQ(full->start, 3u);
  ASSERT_EQ(full->updates.size(), 2u);
  EXPECT_EQ(full->updates[1], to_bytes("u-two"));
  for (size_t n = 0; n < range.size(); ++n) {
    EXPECT_FALSE(try_parse_range_reply(ByteSpan(range.data(), n)).has_value())
        << "prefix " << n;
  }
  // Trailing bytes are forgery surface, not slack.
  Bytes padded = range;
  padded.push_back(0);
  EXPECT_FALSE(try_parse_range_reply(padded).has_value());

  // A hostile count dies on bounds checks, not on a giant reserve.
  Bytes hostile = encode_range_reply(1, 0, {to_bytes("u")});
  hostile[16] = 0xff;  // count := 0xff000001
  EXPECT_FALSE(try_parse_range_reply(hostile).has_value());

  Bytes get = encode_get_range(9, 4);
  auto req = try_parse_get_range(get);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->start, 9u);
  EXPECT_EQ(req->max_count, 4u);
  for (size_t n = 0; n < get.size(); ++n) {
    EXPECT_FALSE(try_parse_get_range(ByteSpan(get.data(), n)).has_value());
  }

  Bytes err = encode_error(Errc::kNotFound, "nope");
  auto werr = try_parse_error(err);
  ASSERT_TRUE(werr.has_value());
  EXPECT_EQ(werr->code, Errc::kNotFound);
  EXPECT_EQ(werr->message, "nope");
  EXPECT_FALSE(try_parse_error({}).has_value());
  Bytes unknown_code = {0x7f};
  EXPECT_FALSE(try_parse_error(unknown_code).has_value());
}

TEST(Frame, ErrcWireCodesRoundTrip) {
  for (Errc e : {Errc::kFutureInstant, Errc::kBadRange, Errc::kConflict,
                 Errc::kMalformed, Errc::kSelftestFailed, Errc::kNotFound,
                 Errc::kOverloaded, Errc::kUnsupportedVersion}) {
    auto back = errc_from_wire(errc_wire_code(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
  EXPECT_FALSE(errc_from_wire(0).has_value());
  EXPECT_FALSE(errc_from_wire(200).has_value());
}

// --- Store -------------------------------------------------------------------

TEST(Store, PutIsIdempotentButNeverEquivocates) {
  Store s;
  auto first = s.put("T1", to_bytes("wire-1"));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value());
  auto again = s.put("T1", to_bytes("wire-1"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());  // identical re-publish: a no-op
  auto conflict = s.put("T1", to_bytes("wire-2"));
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error(), Errc::kConflict);
  ASSERT_TRUE(s.find("T1").has_value());
  EXPECT_EQ(*s.find("T1"), to_bytes("wire-1"));  // the original survived
  EXPECT_FALSE(s.find("T2").has_value());
  EXPECT_EQ(s.size(), 1u);
}

TEST(Store, RangeHonoursCountAndByteBudgets) {
  Store s;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.put("T" + std::to_string(i), Bytes(100, std::uint8_t(i))).ok());
  }
  Store::RangeView all = s.range(0, 100, kMaxPayload);
  EXPECT_EQ(all.total, 10u);
  EXPECT_EQ(all.updates.size(), 10u);

  Store::RangeView capped = s.range(2, 3, kMaxPayload);
  ASSERT_EQ(capped.updates.size(), 3u);
  EXPECT_EQ(capped.updates[0][0], 2);  // starts at publication position 2

  // A byte budget that fits ~2 items stops early; total still reports 10
  // so a catch-up client knows it is behind.
  Store::RangeView tight = s.range(0, 100, 250);
  EXPECT_EQ(tight.total, 10u);
  EXPECT_LT(tight.updates.size(), 3u);
  EXPECT_FALSE(tight.updates.empty());

  Store::RangeView past_end = s.range(50, 10, kMaxPayload);
  EXPECT_EQ(past_end.total, 10u);
  EXPECT_TRUE(past_end.updates.empty());
}

// --- Live daemon over real sockets -------------------------------------------

// Raw-socket helper for the hostile-client tests: everything the daemon
// must survive that SocketTransport would never send.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void send_bytes(ByteSpan b) {
    ASSERT_EQ(::send(fd_, b.data(), b.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(b.size()));
  }

  /// Reads one frame (or EOF/timeout -> nullopt) within `timeout_ms`.
  std::optional<Frame> read_frame(int timeout_ms = 2000) {
    FrameReader reader;
    std::uint8_t buf[4096];
    for (;;) {
      if (auto f = reader.next()) return f;
      if (reader.broken()) return std::nullopt;
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) return std::nullopt;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      reader.feed(ByteSpan(buf, size_t(n)));
    }
  }

  /// True when the peer closed (EOF observed within the timeout).
  bool reaches_eof(int timeout_ms = 2000) {
    std::uint8_t buf[256];
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) return false;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class DaemonTest : public ::testing::Test {
 protected:
  void boot(DaemonConfig cfg = {}) {
    store_ = std::make_shared<Store>();
    store_->set_server_key("tre-toy-96", to_bytes("not-a-real-key"));
    ASSERT_TRUE(store_->put("T1", to_bytes("update-T1-wire")).ok());
    ASSERT_TRUE(store_->put("T2", to_bytes("update-T2-wire")).ok());
    daemon_ = std::make_unique<Daemon>(store_, cfg);
    thread_ = std::thread([this] { daemon_->run(); });
  }

  void TearDown() override {
    if (daemon_) daemon_->stop();
    if (thread_.joinable()) thread_.join();
  }

  std::shared_ptr<Store> store_;
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
};

TEST_F(DaemonTest, ServesKeyUpdateRangeAndPing) {
  boot();
  client::SocketTransport t({{"127.0.0.1", daemon_->port()}});

  EXPECT_TRUE(t.ping(0));

  auto key = t.get_key(0);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->set_name, "tre-toy-96");
  EXPECT_EQ(key->pub, to_bytes("not-a-real-key"));

  std::optional<Bytes> got;
  t.request(0, "T2", [&](Bytes b) { got = std::move(b); });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("update-T2-wire"));

  auto range = t.get_range(0, 0, 10);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->total, 2u);
  ASSERT_EQ(range->updates.size(), 2u);
  EXPECT_EQ(range->updates[0], to_bytes("update-T1-wire"));

  // All of that rode ONE connection.
  EXPECT_EQ(t.connects(), 1u);
  Daemon::Stats s = daemon_->stats();
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.bad_frames, 0u);
}

TEST_F(DaemonTest, MissingArtifactsAnswerKErrorNotSilence) {
  boot();
  client::SocketTransport t({{"127.0.0.1", daemon_->port()}});

  std::optional<Bytes> got;
  t.request(0, "T-missing", [&](Bytes b) { got = std::move(b); });
  EXPECT_FALSE(got.has_value());
  ASSERT_TRUE(t.last_error().has_value());
  EXPECT_EQ(t.last_error()->code, Errc::kNotFound);

  // An unconfigured key answers kError too.
  auto bare_store = std::make_shared<Store>();
  Daemon bare(bare_store, {});
  std::thread th([&] { bare.run(); });
  client::SocketTransport t2({{"127.0.0.1", bare.port()}});
  EXPECT_FALSE(t2.get_key(0).has_value());
  ASSERT_TRUE(t2.last_error().has_value());
  EXPECT_EQ(t2.last_error()->code, Errc::kNotFound);
  bare.stop();
  th.join();
}

TEST_F(DaemonTest, GarbageFramesEarnAnErrorAndAClose) {
  boot();
  RawClient c(daemon_->port());
  ASSERT_TRUE(c.connected());
  c.send_bytes(to_bytes("this is not a frame at all"));
  auto f = c.read_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kError);
  auto err = try_parse_error(f->payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, Errc::kMalformed);
  EXPECT_TRUE(c.reaches_eof());

  // The loop survived: a fresh, polite client is served normally.
  client::SocketTransport t({{"127.0.0.1", daemon_->port()}});
  EXPECT_TRUE(t.ping(0));
  EXPECT_GE(daemon_->stats().bad_frames, 1u);
}

TEST_F(DaemonTest, WrongVersionGetsUnsupportedVersion) {
  boot();
  RawClient c(daemon_->port());
  ASSERT_TRUE(c.connected());
  Bytes wire = encode_frame(FrameType::kPing, {});
  wire[4] = 9;  // future protocol version
  c.send_bytes(wire);
  auto f = c.read_frame();
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->type, FrameType::kError);
  auto err = try_parse_error(f->payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, Errc::kUnsupportedVersion);
  EXPECT_TRUE(c.reaches_eof());
}

TEST_F(DaemonTest, OversizedRequestIsSheddedNotBuffered) {
  boot();
  RawClient c(daemon_->port());
  ASSERT_TRUE(c.connected());
  // Header claims 1 MiB: over the REQUEST cap even though under the
  // frame cap. The daemon must refuse on the header alone.
  Bytes wire = encode_frame(FrameType::kGetUpdate, Bytes(kMaxPayload, 0));
  c.send_bytes(ByteSpan(wire.data(), kHeaderBytes));
  auto f = c.read_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kError);
  EXPECT_TRUE(c.reaches_eof());
}

TEST_F(DaemonTest, ReplyTypedFramesFromClientsAreRefusedPolitely) {
  boot();
  RawClient c(daemon_->port());
  ASSERT_TRUE(c.connected());
  // Syntactically valid, semantically absurd: a client sending kPong.
  c.send_bytes(encode_frame(FrameType::kPong, {}));
  auto f = c.read_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kError);
  auto err = try_parse_error(f->payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, Errc::kMalformed);
  // NOT framing damage: the connection stays up for real requests.
  c.send_bytes(encode_frame(FrameType::kPing, to_bytes("still here")));
  f = c.read_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kPong);
}

TEST_F(DaemonTest, ShedsGracefullyAtTheConnectionCap) {
  DaemonConfig cfg;
  cfg.max_conns = 2;
  boot(cfg);

  RawClient a(daemon_->port()), b(daemon_->port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  a.send_bytes(encode_frame(FrameType::kPing, {}));
  ASSERT_TRUE(a.read_frame().has_value());  // both are really registered
  b.send_bytes(encode_frame(FrameType::kPing, {}));
  ASSERT_TRUE(b.read_frame().has_value());

  // The third is told WHY before the close: kError(kOverloaded), no hang.
  RawClient c(daemon_->port());
  ASSERT_TRUE(c.connected());
  auto f = c.read_frame();
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->type, FrameType::kError);
  auto err = try_parse_error(f->payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, Errc::kOverloaded);
  EXPECT_TRUE(c.reaches_eof());
  EXPECT_GE(daemon_->stats().shed, 1u);

  // Existing connections were untouched by the shed.
  a.send_bytes(encode_frame(FrameType::kPing, {}));
  EXPECT_TRUE(a.read_frame().has_value());
}

TEST_F(DaemonTest, IdleConnectionsAreReaped) {
  DaemonConfig cfg;
  cfg.idle_timeout_ms = 200;
  cfg.tick_ms = 50;
  boot(cfg);
  RawClient c(daemon_->port());
  ASSERT_TRUE(c.connected());
  EXPECT_TRUE(c.reaches_eof(3000));  // reaped without us sending a byte
  EXPECT_GE(daemon_->stats().idle_closed, 1u);
}

TEST_F(DaemonTest, MidFrameDisconnectLeavesTheLoopServing) {
  boot();
  {
    RawClient c(daemon_->port());
    ASSERT_TRUE(c.connected());
    Bytes wire = encode_frame(FrameType::kGetUpdate, to_bytes("T1"));
    c.send_bytes(ByteSpan(wire.data(), wire.size() / 2));
  }  // dtor closes mid-frame
  client::SocketTransport t({{"127.0.0.1", daemon_->port()}});
  EXPECT_TRUE(t.ping(0));
}

// --- Hostile peers vs. the socket fetcher ------------------------------------

/// A fake "mirror" speaking raw TCP with a configurable pathology. One
/// connection at a time, one thread each — these tests exercise client
/// robustness, not server throughput.
class HostileServer {
 public:
  enum class Mode {
    kGarbage,        // reply: bytes that are not a frame
    kTruncated,      // reply: valid header, half the promised payload, close
    kOversized,      // reply: header promising > kMaxPayload
    kMidDisconnect,  // reply: nothing; close as soon as a request arrives
    kSilent,         // accept, read, never answer
    kCanned,         // reply: a well-formed kUpdateReply with canned payload
  };

  explicit HostileServer(Mode mode, Bytes canned = {})
      : mode_(mode), canned_(std::move(canned)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t alen = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~HostileServer() {
    stop_.store(true);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return port_; }

 private:
  void serve() {
    while (!stop_.load()) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener closed: shutting down
      handle(fd);
      ::close(fd);
    }
  }

  void handle(int fd) {
    // Read one request frame (close early for the disconnect mode).
    FrameReader reader(kMaxPayload);
    std::uint8_t buf[4096];
    while (!reader.broken()) {
      if (reader.next().has_value()) break;
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return;
      reader.feed(ByteSpan(buf, size_t(n)));
      if (mode_ == Mode::kMidDisconnect) return;  // hang up on first bytes
    }
    Bytes reply;
    switch (mode_) {
      case Mode::kGarbage:
        reply = to_bytes("%%%% definitely not a frame %%%%");
        break;
      case Mode::kTruncated: {
        Bytes full = encode_frame(FrameType::kUpdateReply, Bytes(64, 0x5a));
        reply.assign(full.begin(), full.begin() + long(kHeaderBytes + 16));
        break;
      }
      case Mode::kOversized: {
        reply = encode_frame(FrameType::kUpdateReply, {});
        reply[6] = 0xff;  // promise ~4 GiB
        break;
      }
      case Mode::kSilent: {
        // Answer nothing; hold the socket open until the peer gives up.
        pollfd p{fd, POLLIN, 0};
        ::poll(&p, 1, 3000);
        return;
      }
      case Mode::kMidDisconnect:
        return;
      case Mode::kCanned:
        reply = encode_frame(FrameType::kUpdateReply, canned_);
        break;
    }
    (void)!::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
  }

  Mode mode_;
  Bytes canned_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// The tentpole acceptance test: the UNCHANGED Byzantine trust gate —
// parse, tag check, pairing check, health-scored failover — pointed at
// real sockets. Three hostile peers and one honest daemon; the fetcher
// must converge on the genuine update, bit for bit, with zero forged
// acceptances, exactly as it does over the simnet.
class SocketFetcherTest : public ::testing::Test {
 protected:
  SocketFetcherTest()
      : params_(params::load("tre-toy-96")),
        scheme_(params_),
        rng_(to_bytes("socket-fetcher-rng")),
        server_(scheme_.server_keygen(rng_)) {}

  core::KeyUpdate update(const std::string& tag) {
    return scheme_.issue_update(server_, tag);
  }

  std::shared_ptr<Store> store_with(const core::KeyUpdate& upd) {
    auto s = std::make_shared<Store>();
    s->set_server_key("tre-toy-96", server_.pub.to_bytes());
    auto r = s->put(upd.tag, upd.to_bytes());
    if (!r.ok()) throw Error("store_with: put failed");
    return s;
  }

  std::shared_ptr<const params::GdhParams> params_;
  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
};

TEST_F(SocketFetcherTest, SingleHonestDaemonAmongHostileSocketsSuffices) {
  core::KeyUpdate genuine = update("T-release");
  core::KeyUpdate stale = update("T-stale");  // relabel ammunition

  // Bit-flip the genuine wire: parses-then-fails or fails-to-parse,
  // depending on where the flip lands — either way, never accepted.
  Bytes corrupt = genuine.to_bytes();
  corrupt[corrupt.size() / 2] ^= 0x40;

  HostileServer garbage(HostileServer::Mode::kGarbage);
  HostileServer relabel(HostileServer::Mode::kCanned, stale.to_bytes());
  HostileServer corruptor(HostileServer::Mode::kCanned, corrupt);
  auto store = store_with(genuine);
  Daemon honest(store, {});
  std::thread honest_thread([&] { honest.run(); });

  // Honest LAST in preference order: the fetcher has to fail over to it.
  client::SocketTransport transport(
      {{"127.0.0.1", garbage.port()},
       {"127.0.0.1", relabel.port()},
       {"127.0.0.1", corruptor.port()},
       {"127.0.0.1", honest.port()}},
      500);

  client::FetcherConfig cfg;
  cfg.failover_after = 2;
  cfg.attempts_per_tag = 32;
  server::Timeline timeline(0);
  client::UpdateFetcher fetcher(scheme_, server_.pub, transport, timeline,
                                {0, 1, 2, 3}, to_bytes("socket-jitter"), cfg);

  std::optional<client::FetchResult> got;
  fetcher.fetch_verified({genuine.tag},
                         [&](const client::FetchResult& r) { got = r; });
  while (fetcher.busy()) timeline.advance_by(1);

  honest.stop();
  honest_thread.join();

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(scheme_.verify_update(server_.pub, got->update));
  EXPECT_EQ(got->update, genuine);  // bit-exact: the genuine signature
  EXPECT_GT(got->stats.total_rejected() + got->stats.timeouts, 0u);
  EXPECT_GT(got->stats.failovers, 0u);
  // The honest endpoint ends healthier than every hostile one.
  EXPECT_GT(fetcher.health(3), fetcher.health(0));
  EXPECT_GT(fetcher.health(3), fetcher.health(1));
  EXPECT_GT(fetcher.health(3), fetcher.health(2));
}

TEST_F(SocketFetcherTest, AllHostileMeansFailureNeverForgery) {
  core::KeyUpdate genuine = update("T-release");
  core::KeyUpdate stale = update("T-stale");
  Bytes corrupt = genuine.to_bytes();
  corrupt[3] ^= 0x01;

  HostileServer garbage(HostileServer::Mode::kGarbage);
  HostileServer truncated(HostileServer::Mode::kTruncated);
  HostileServer oversized(HostileServer::Mode::kOversized);
  HostileServer disconnect(HostileServer::Mode::kMidDisconnect);
  HostileServer relabel(HostileServer::Mode::kCanned, stale.to_bytes());
  HostileServer corruptor(HostileServer::Mode::kCanned, corrupt);

  client::SocketTransport transport({{"127.0.0.1", garbage.port()},
                                     {"127.0.0.1", truncated.port()},
                                     {"127.0.0.1", oversized.port()},
                                     {"127.0.0.1", disconnect.port()},
                                     {"127.0.0.1", relabel.port()},
                                     {"127.0.0.1", corruptor.port()}},
                                    300);

  client::FetcherConfig cfg;
  cfg.failover_after = 1;
  cfg.attempts_per_tag = 18;  // three laps over six hostile peers
  server::Timeline timeline(0);
  client::UpdateFetcher fetcher(scheme_, server_.pub, transport, timeline,
                                {0, 1, 2, 3, 4, 5}, to_bytes("hostile-only"),
                                cfg);

  bool accepted = false;
  std::optional<client::FetchStats> failure;
  fetcher.fetch_verified({genuine.tag},
                         [&](const client::FetchResult&) { accepted = true; },
                         [&](const client::FetchStats& s) { failure = s; });
  while (fetcher.busy()) timeline.advance_by(1);

  EXPECT_FALSE(accepted);  // zero forged accepts, full stop
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->attempts, 18u);
  // Frame-level pathologies (garbage/truncated/oversized/disconnect)
  // surface as timeouts — the transport refuses to deliver damaged
  // frames; payload-level hostility surfaces as typed rejections.
  EXPECT_GT(failure->timeouts, 0u);
  EXPECT_GT(failure->rejected_tag + failure->rejected_parse +
                failure->rejected_sig,
            0u);
}

TEST_F(SocketFetcherTest, RangeCatchUpServesVerifiableHistory) {
  // A catch-up client replays the archive through kGetRange and verifies
  // every update it receives — the daemon is still just a byte shuffler.
  auto store = std::make_shared<Store>();
  store->set_server_key("tre-toy-96", server_.pub.to_bytes());
  std::vector<core::KeyUpdate> history;
  for (int i = 0; i < 5; ++i) {
    history.push_back(update("T" + std::to_string(i)));
    ASSERT_TRUE(store->put(history.back().tag, history.back().to_bytes()).ok());
  }
  Daemon d(store, {});
  std::thread th([&] { d.run(); });
  client::SocketTransport t({{"127.0.0.1", d.port()}});

  auto reply = t.get_range(0, 0, 100);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->total, 5u);
  ASSERT_EQ(reply->updates.size(), 5u);
  for (size_t i = 0; i < reply->updates.size(); ++i) {
    auto parsed = core::KeyUpdate::try_from_bytes(*params_, reply->updates[i]);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(scheme_.verify_update(server_.pub, *parsed));
    EXPECT_EQ(*parsed, history[i]);
  }
  d.stop();
  th.join();
}

TEST_F(SocketFetcherTest, BatchedRangeCatchUpDropsForgedHistory) {
  // The fetcher-side catch-up path: one kGetRange page, parsed and then
  // RLC-batch-verified in one shot. The store (a hostile mirror's view)
  // hides a relabeled update and a signature substitution mid-history;
  // bisection must attribute exactly those two and surface the rest.
  auto store = std::make_shared<Store>();
  store->set_server_key("tre-toy-96", server_.pub.to_bytes());
  std::vector<core::KeyUpdate> history;
  for (int i = 0; i < 8; ++i) history.push_back(update("T" + std::to_string(i)));

  core::KeyUpdate relabeled = history[2];
  relabeled.tag = "T-relabeled";  // honest sig, foreign tag
  core::KeyUpdate substituted = history[5];
  substituted.sig = history[6].sig;  // wrong tag's honest sig
  for (int i = 0; i < 8; ++i) {
    const core::KeyUpdate& u =
        i == 2 ? relabeled : (i == 5 ? substituted : history[i]);
    ASSERT_TRUE(store->put(u.tag, u.to_bytes()).ok());
  }

  Daemon d(store, {});
  std::thread th([&] { d.run(); });
  client::SocketTransport t({{"127.0.0.1", d.port()}});
  server::Timeline timeline(0);
  client::UpdateFetcher fetcher(scheme_, server_.pub, t, timeline, {0},
                                to_bytes("catchup-jitter"), {});

  auto page = fetcher.fetch_range_verified(0, 0, 100);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->total, 8u);
  EXPECT_EQ(page->served, 8u);
  EXPECT_EQ(page->rejected_parse, 0u);
  EXPECT_EQ(page->rejected_sig, 2u);  // exactly the two planted items
  ASSERT_EQ(page->updates.size(), 6u);
  for (const core::KeyUpdate& u : page->updates) {
    EXPECT_TRUE(scheme_.verify_update(server_.pub, u));  // zero forged accepts
    EXPECT_NE(u.tag, relabeled.tag);
    EXPECT_NE(u.tag, substituted.tag);
  }
  // Forged items in the page demote the mirror like any failed attempt.
  EXPECT_LT(fetcher.health(0), 0);

  // Paged catch-up sees the same world: three pages of ≤3, same rejects.
  size_t verified = 0, dropped = 0;
  for (std::uint64_t pos = 0; pos < 8;) {
    auto chunk = fetcher.fetch_range_verified(0, pos, 3);
    ASSERT_TRUE(chunk.has_value());
    ASSERT_GT(chunk->served, 0u);
    verified += chunk->updates.size();
    dropped += chunk->rejected_sig;
    pos += chunk->served;
  }
  EXPECT_EQ(verified, 6u);
  EXPECT_EQ(dropped, 2u);

  d.stop();
  th.join();
}

}  // namespace
}  // namespace tre::daemon
