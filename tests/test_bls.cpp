// BLS short signatures: sign/verify, aggregation, batch verification,
// and the equivalence with TRE key updates (§5.3.1).
#include "bls/bls.h"

#include <gtest/gtest.h>

#include "core/tre.h"
#include "hashing/drbg.h"
#include "timeserver/archive.h"

namespace tre::bls {
namespace {

class BlsTest : public ::testing::Test {
 protected:
  BlsTest()
      : params_(params::load("tre-toy-96")),
        bls_(params_),
        rng_(to_bytes("bls-tests")),
        keys_(bls_.keygen(rng_)) {}

  std::vector<SignedMessage> make_batch(size_t n, const char* prefix = "msg-") {
    std::vector<SignedMessage> batch;
    for (size_t i = 0; i < n; ++i) {
      std::string m = prefix + std::to_string(i);
      batch.push_back(SignedMessage{m, bls_.sign(keys_, to_bytes(m))});
    }
    return batch;
  }

  std::shared_ptr<const params::GdhParams> params_;
  BlsScheme bls_;
  hashing::HmacDrbg rng_;
  KeyPair keys_;
};

TEST_F(BlsTest, SignVerifyRoundtrip) {
  Signature sig = bls_.sign(keys_, to_bytes("hello"));
  EXPECT_TRUE(bls_.verify(keys_.g, keys_.pk, to_bytes("hello"), sig));
  EXPECT_FALSE(bls_.verify(keys_.g, keys_.pk, to_bytes("hullo"), sig));
}

TEST_F(BlsTest, SignatureIsDeterministic) {
  EXPECT_EQ(bls_.sign(keys_, to_bytes("m")).sig, bls_.sign(keys_, to_bytes("m")).sig);
}

TEST_F(BlsTest, WrongKeyRejected) {
  KeyPair other = bls_.keygen(rng_);
  Signature sig = bls_.sign(other, to_bytes("m"));
  EXPECT_FALSE(bls_.verify(keys_.g, keys_.pk, to_bytes("m"), sig));
  EXPECT_FALSE(bls_.verify(keys_.g, keys_.pk, to_bytes("m"),
                           Signature{ec::G1Point::infinity(params_->ctx())}));
}

TEST_F(BlsTest, SignatureIsOneCompressedPoint) {
  Signature sig = bls_.sign(keys_, to_bytes("short"));
  EXPECT_EQ(sig.sig.to_bytes_compressed().size(), params_->g1_compressed_bytes());
}

TEST_F(BlsTest, AggregateVerifies) {
  auto batch = make_batch(5);
  Signature agg = bls_.aggregate(batch);
  std::vector<std::string> msgs;
  for (const auto& sm : batch) msgs.push_back(sm.msg);
  EXPECT_TRUE(bls_.verify_aggregate(keys_.g, keys_.pk, msgs, agg));

  // Tampering with the aggregate fails.
  Signature bad{agg.sig.doubled()};
  EXPECT_FALSE(bls_.verify_aggregate(keys_.g, keys_.pk, msgs, bad));
  // Missing message fails.
  msgs.pop_back();
  EXPECT_FALSE(bls_.verify_aggregate(keys_.g, keys_.pk, msgs, agg));
}

TEST_F(BlsTest, AggregateRejectsRepeatedMessages) {
  auto batch = make_batch(3);
  Signature agg = bls_.aggregate(batch);
  std::vector<std::string> msgs = {batch[0].msg, batch[0].msg, batch[1].msg};
  EXPECT_FALSE(bls_.verify_aggregate(keys_.g, keys_.pk, msgs, agg));
}

TEST_F(BlsTest, BatchVerificationAcceptsValidBatch) {
  auto batch = make_batch(20);
  EXPECT_TRUE(bls_.verify_batch(keys_.g, keys_.pk, batch, rng_));
  EXPECT_TRUE(bls_.verify_batch(keys_.g, keys_.pk, {}, rng_));  // vacuous
}

TEST_F(BlsTest, BatchVerificationCatchesOneForgery) {
  auto batch = make_batch(20);
  // Replace one signature with a signature on a different message.
  batch[7].sig = bls_.sign(keys_, to_bytes("something else"));
  EXPECT_FALSE(bls_.verify_batch(keys_.g, keys_.pk, batch, rng_));
}

TEST_F(BlsTest, BatchVerificationCatchesForeignSignature) {
  auto batch = make_batch(10);
  KeyPair mallory = bls_.keygen(rng_);
  batch[3].sig = bls_.sign(mallory, to_bytes(batch[3].msg));
  EXPECT_FALSE(bls_.verify_batch(keys_.g, keys_.pk, batch, rng_));
}

TEST_F(BlsTest, KeyUpdatesAreBlsSignatures) {
  // §5.3.1: a TRE time-bound key update is exactly a BLS signature by
  // the time server on the time string.
  core::TreScheme scheme(params_);
  core::ServerKeyPair server = scheme.server_keygen(rng_);
  core::KeyUpdate upd = scheme.issue_update(server, "2005-06-06T09:00Z");
  Signature as_sig{upd.sig};
  EXPECT_TRUE(bls_.verify(server.pub.g, server.pub.sg,
                          to_bytes("2005-06-06T09:00Z"), as_sig));
}

TEST_F(BlsTest, ArchiveCatchUpBatchVerification) {
  core::TreScheme scheme(params_);
  core::ServerKeyPair server = scheme.server_keygen(rng_);
  std::vector<core::KeyUpdate> updates;
  for (int i = 0; i < 30; ++i) {
    updates.push_back(scheme.issue_update(server, "t" + std::to_string(i)));
  }
  EXPECT_TRUE(server::verify_update_batch(params_, server.pub, updates, rng_));
  // One forged update poisons the batch.
  updates[11].sig = updates[11].sig.doubled();
  EXPECT_FALSE(server::verify_update_batch(params_, server.pub, updates, rng_));
}

}  // namespace
}  // namespace tre::bls
