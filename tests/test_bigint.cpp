// Unit and property tests for fixed-width big integers, Montgomery
// arithmetic and primality testing.
#include "bigint/bigint.h"

#include <gtest/gtest.h>

#include "bigint/montgomery.h"
#include "bigint/prime.h"
#include "hashing/drbg.h"

namespace tre::bigint {
namespace {

using B4 = BigInt<4>;
using B8 = BigInt<8>;

hashing::HmacDrbg test_rng(const char* seed = "bigint-tests") {
  return hashing::HmacDrbg(to_bytes(seed));
}

TEST(BigInt, HexRoundtrip) {
  auto v = B4::from_hex("deadbeef00112233445566778899aabb");
  EXPECT_EQ(v.to_hex(), "deadbeef00112233445566778899aabb");
  EXPECT_EQ(B4::from_u64(0).to_hex(), "0");
  EXPECT_EQ(B4::from_u64(0x1f).to_hex(), "1f");
}

TEST(BigInt, BytesRoundtrip) {
  Bytes raw = from_hex("0102030405060708090a0b0c0d0e0f10");
  auto v = B4::from_bytes_be(raw);
  EXPECT_EQ(v.to_bytes_be(16), raw);
  EXPECT_EQ(v.to_bytes_be(20), concat({from_hex("00000000"), raw}));
  EXPECT_THROW(v.to_bytes_be(4), Error);  // does not fit
}

TEST(BigInt, Comparisons) {
  auto a = B4::from_u64(5);
  auto b = B4::from_hex("10000000000000000");  // 2^64
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, B4::from_u64(5));
  EXPECT_TRUE(B4{}.is_zero());
  EXPECT_TRUE(a.is_odd());
  EXPECT_FALSE(b.is_odd());
}

TEST(BigInt, AddSubCarryChains) {
  auto max64 = B4::from_hex("ffffffffffffffff");
  auto one = B4::from_u64(1);
  auto sum = add(max64, one);
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
  EXPECT_EQ(sub(sum, one), max64);

  // Carry out of the top limb is reported.
  B4 all_ones = B4::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffff"
                             "ffffffffffffffff");
  B4 tmp = all_ones;
  EXPECT_EQ(add_assign(tmp, one), 1u);
  EXPECT_TRUE(tmp.is_zero());
  tmp = B4{};
  EXPECT_EQ(sub_assign(tmp, one), 1u);
  EXPECT_EQ(tmp, all_ones);
}

TEST(BigInt, BitLengthAndBit) {
  EXPECT_EQ(B4{}.bit_length(), 0u);
  EXPECT_EQ(B4::from_u64(1).bit_length(), 1u);
  EXPECT_EQ(B4::from_u64(0xff).bit_length(), 8u);
  auto v = B4::from_hex("80000000000000000");  // bit 67
  EXPECT_EQ(v.bit_length(), 68u);
  EXPECT_TRUE(v.bit(67));
  EXPECT_FALSE(v.bit(66));
}

TEST(BigInt, Shifts) {
  auto v = B4::from_u64(1);
  EXPECT_EQ(shl(v, 130).to_hex(), "400000000000000000000000000000000");
  EXPECT_EQ(shr(shl(v, 130), 130), v);
  EXPECT_TRUE(shr(v, 1).is_zero());
  EXPECT_EQ(shl(v, 0), v);

  auto pattern = B4::from_hex("123456789abcdef0fedcba9876543210");
  EXPECT_EQ(shr(shl(pattern, 64), 64), pattern);
  EXPECT_EQ(shl(pattern, 4).to_hex(), "123456789abcdef0fedcba98765432100");
}

TEST(BigInt, MulWideSmall) {
  auto a = B4::from_u64(0xffffffffffffffffull);
  auto b = B4::from_u64(0xffffffffffffffffull);
  auto prod = mul_wide(a, b);
  EXPECT_EQ(prod.to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, MulU64) {
  auto a = B4::from_hex("ffffffffffffffffffffffffffffffff");
  std::uint64_t carry = 0;
  auto r = mul_u64(a, 16, &carry);
  EXPECT_EQ(r.to_hex(), "ffffffffffffffffffffffffffffffff0");
  EXPECT_EQ(carry, 0u);
  // Carry out of the top limb.
  BigInt<2> full = BigInt<2>::from_hex("ffffffffffffffffffffffffffffffff");
  auto r2 = mul_u64(full, 16, &carry);
  EXPECT_EQ(r2.to_hex(), "fffffffffffffffffffffffffffffff0");
  EXPECT_EQ(carry, 0xfu);
}

TEST(BigInt, DivmodBasics) {
  B4 q, r;
  divmod(B4::from_u64(100), B4::from_u64(7), q, r);
  EXPECT_EQ(q, B4::from_u64(14));
  EXPECT_EQ(r, B4::from_u64(2));

  divmod(B4::from_u64(5), B4::from_u64(100), q, r);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, B4::from_u64(5));

  EXPECT_THROW(divmod(B4::from_u64(5), B4{}, q, r), Error);
}

// Property: for random a, b: a = q*b + r with r < b.
TEST(BigInt, DivmodReconstruction) {
  auto rng = test_rng();
  for (int i = 0; i < 50; ++i) {
    B4 a = random_bits<4>(rng, 200);
    B4 b = random_bits<4>(rng, 20 + static_cast<size_t>(i));
    B4 q, r;
    divmod(a, b, q, r);
    EXPECT_LT(r, b);
    auto back = mul_wide(q, b);
    auto wide_r = r.resized<8>();
    add_assign(back, wide_r);
    EXPECT_EQ(back, a.resized<8>());
  }
}

// Property: modular ring laws under a random odd modulus.
TEST(BigInt, ModularRingLaws) {
  auto rng = test_rng();
  for (int i = 0; i < 25; ++i) {
    B4 m = random_bits<4>(rng, 150);
    m.w[0] |= 1;
    B4 a = random_below(rng, m);
    B4 b = random_below(rng, m);
    B4 c = random_below(rng, m);
    // (a+b)+c == a+(b+c)
    EXPECT_EQ(addmod(addmod(a, b, m), c, m), addmod(a, addmod(b, c, m), m));
    // a+b == b+a, a*b == b*a
    EXPECT_EQ(addmod(a, b, m), addmod(b, a, m));
    EXPECT_EQ(mulmod(a, b, m), mulmod(b, a, m));
    // a*(b+c) == a*b + a*c
    EXPECT_EQ(mulmod(a, addmod(b, c, m), m),
              addmod(mulmod(a, b, m), mulmod(a, c, m), m));
    // a - b + b == a
    EXPECT_EQ(addmod(submod(a, b, m), b, m), a);
  }
}

TEST(BigInt, ModInverse) {
  auto rng = test_rng();
  B4 m = B4::from_hex("fa08d6af57");  // prime
  for (int i = 0; i < 30; ++i) {
    B4 a = random_nonzero_below(rng, m);
    B4 inv = mod_inverse(a, m);
    EXPECT_EQ(mulmod(a, inv, m), B4::from_u64(1));
  }
  EXPECT_THROW(mod_inverse(B4{}, m), Error);
  // Non-coprime case: modulus 9, value 3.
  EXPECT_THROW(mod_inverse(B4::from_u64(3), B4::from_u64(9)), Error);
}

TEST(Montgomery, RoundtripAndMul) {
  auto rng = test_rng();
  B8 m = random_bits<8>(rng, 300);
  m.w[0] |= 1;
  MontCtx<8> mont(m);
  for (int i = 0; i < 25; ++i) {
    B8 a = random_below(rng, m);
    B8 b = random_below(rng, m);
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
    B8 prod = mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
    EXPECT_EQ(prod, mulmod(a, b, m));
  }
}

TEST(Montgomery, ActiveLimbsSmallModulus) {
  // Modulus much smaller than capacity exercises the n < L path.
  B8 m = B8::from_hex("fa08d6af57");
  MontCtx<8> mont(m);
  EXPECT_EQ(mont.active_limbs(), 1u);
  auto rng = test_rng();
  for (int i = 0; i < 50; ++i) {
    B8 a = random_below(rng, m);
    B8 b = random_below(rng, m);
    EXPECT_EQ(mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
              mulmod(a, b, m));
  }
}

TEST(Montgomery, PowMatchesFermat) {
  B8 p = B8::from_hex("6429155995d43598752910865601b03f1b243370b1e40cf2fc4a74c1"
                      "c3b9e526b9a0f85e456a17cfd0f200007517f2698a6f73c9c4b29db5"
                      "650707683d48de73");  // 511-bit prime
  MontCtx<8> mont(p);
  auto rng = test_rng();
  B8 e = sub(p, B8::from_u64(1));
  for (int i = 0; i < 5; ++i) {
    B8 a = random_nonzero_below(rng, p);
    // Fermat: a^(p-1) == 1 (mod p)
    EXPECT_EQ(mont.pow_plain(a, e), B8::from_u64(1));
  }
}

TEST(Montgomery, PowEdgeCases) {
  B8 m = B8::from_hex("fa08d6af57");
  MontCtx<8> mont(m);
  B8 a = B8::from_u64(12345);
  EXPECT_EQ(mont.pow_plain(a, B8{}), B8::from_u64(1));        // x^0 = 1
  EXPECT_EQ(mont.pow_plain(a, B8::from_u64(1)), a);           // x^1 = x
  EXPECT_EQ(mont.pow_plain(a, B8::from_u64(2)), mulmod(a, a, m));
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontCtx<4>(B4::from_u64(100)), Error);
  EXPECT_THROW(MontCtx<4>(B4::from_u64(1)), Error);
}

TEST(Prime, KnownSmallValues) {
  auto rng = test_rng();
  EXPECT_FALSE(is_probable_prime(B4::from_u64(0), rng));
  EXPECT_FALSE(is_probable_prime(B4::from_u64(1), rng));
  EXPECT_TRUE(is_probable_prime(B4::from_u64(2), rng));
  EXPECT_TRUE(is_probable_prime(B4::from_u64(3), rng));
  EXPECT_FALSE(is_probable_prime(B4::from_u64(4), rng));
  EXPECT_TRUE(is_probable_prime(B4::from_u64(65537), rng));
  EXPECT_FALSE(is_probable_prime(B4::from_u64(65537ull * 3), rng));
  // Carmichael number 561 = 3 * 11 * 17 must be rejected.
  EXPECT_FALSE(is_probable_prime(B4::from_u64(561), rng));
  // Large known prime (2^127 - 1, Mersenne).
  B4 m127 = sub(shl(B4::from_u64(1), 127), B4::from_u64(1));
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 is composite.
  B4 m128 = sub(shl(B4::from_u64(1), 128), B4::from_u64(1));
  EXPECT_FALSE(is_probable_prime(m128, rng));
}

TEST(Prime, EmbeddedCurveParametersArePrime) {
  auto rng = test_rng();
  auto q = BigInt<12>::from_hex("c02c6b9586b4625b475b51096c4ad652af3f5d79");
  EXPECT_TRUE(is_probable_prime(q, rng));
}

TEST(Prime, RandomPrimeHasRequestedSize) {
  auto rng = test_rng();
  B4 p = random_prime<4>(rng, 96, /*mr_rounds=*/20);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
}

TEST(Random, BelowIsUniformlyBounded) {
  auto rng = test_rng();
  B4 bound = B4::from_u64(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(random_below(rng, bound), bound);
  }
  // Nonzero variant never returns zero.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(random_nonzero_below(rng, B4::from_u64(2)).is_zero());
  }
}

TEST(Random, BitsSetsTopBit) {
  auto rng = test_rng();
  for (size_t bits : {2u, 17u, 64u, 65u, 200u}) {
    EXPECT_EQ(random_bits<4>(rng, bits).bit_length(), bits);
  }
}

// Typed property tests: the arithmetic must hold at every limb width the
// repo instantiates (scalars, fields, RSW moduli, twist orders).
template <typename T>
class BigIntWidths : public ::testing::Test {};
using Widths = ::testing::Types<BigInt<2>, BigInt<4>, BigInt<8>, BigInt<12>,
                                BigInt<24>, BigInt<32>>;
TYPED_TEST_SUITE(BigIntWidths, Widths);

TYPED_TEST(BigIntWidths, DivmodReconstructionAtWidth) {
  auto rng = hashing::HmacDrbg(to_bytes("width-tests"));
  constexpr size_t kBits = TypeParam::kBits;
  for (int i = 0; i < 10; ++i) {
    TypeParam a = random_bits<TypeParam::kLimbs>(rng, kBits - 1);
    TypeParam b = random_bits<TypeParam::kLimbs>(rng, kBits / 2);
    TypeParam q, r;
    divmod(a, b, q, r);
    EXPECT_LT(r, b);
    // q*b + r == a, checked in double width.
    auto back = mul_wide(q, b);
    add_assign(back, r.template resized<2 * TypeParam::kLimbs>());
    EXPECT_EQ(back, (a.template resized<2 * TypeParam::kLimbs>()));
  }
}

TYPED_TEST(BigIntWidths, ShiftRoundtripAtWidth) {
  auto rng = hashing::HmacDrbg(to_bytes("width-shift"));
  TypeParam v = random_bits<TypeParam::kLimbs>(rng, TypeParam::kBits / 2);
  for (size_t s : {1u, 63u, 64u, 65u}) {
    if (s >= TypeParam::kBits / 2) continue;
    EXPECT_EQ(shr(shl(v, s), s), v);
  }
}

TYPED_TEST(BigIntWidths, MontgomeryMatchesSchoolbookAtWidth) {
  auto rng = hashing::HmacDrbg(to_bytes("width-mont"));
  TypeParam m = random_bits<TypeParam::kLimbs>(rng, TypeParam::kBits - 2);
  m.w[0] |= 1;
  MontCtx<TypeParam::kLimbs> mont(m);
  for (int i = 0; i < 10; ++i) {
    TypeParam a = random_below(rng, m);
    TypeParam b = random_below(rng, m);
    EXPECT_EQ(mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
              mulmod(a, b, m));
  }
}

TEST(BigInt, ResizedChecksTruncation) {
  auto big = B8::from_hex("10000000000000000000000000000000000000000000000000"
                          "000000000000000");
  EXPECT_THROW((big.resized<4>()), Error);
  auto small = B8::from_u64(7);
  EXPECT_EQ((small.resized<4>()), B4::from_u64(7));
  EXPECT_EQ((small.resized<12>().resized<8>()), small);
}

}  // namespace
}  // namespace tre::bigint
