// Missing-update resilience (§6 future work): fallback chains,
// disjunctive locking and the multi-granularity server.
#include "timeserver/resilient.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"
#include "timeserver/timeserver.h"

namespace tre::server {
namespace {

class ResilientTest : public ::testing::Test {
 protected:
  ResilientTest()
      : params_(params::load("tre-toy-96")),
        res_(params_),
        scheme_(params_),
        rng_(to_bytes("resilient-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  std::shared_ptr<const params::GdhParams> params_;
  ResilientTre res_;
  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
  core::UserKeyPair user_;
};

// --- fallback_chain ---------------------------------------------------------

TEST_F(ResilientTest, ChainFromSecondGranularity) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].canonical(), "2005-06-06T09:00:30Z");
  EXPECT_EQ(chain[1].canonical(), "2005-06-06T09:01Z");
  EXPECT_EQ(chain[2].canonical(), "2005-06-06T10Z");
  EXPECT_EQ(chain[3].canonical(), "2005-06-07");
  // Never earlier than the release.
  for (const auto& t : chain) EXPECT_GE(t.unix_seconds(), release.unix_seconds());
}

TEST_F(ResilientTest, ChainOnExactBoundaries) {
  // Release exactly at midnight: every coarser boundary is that instant.
  auto release = *TimeSpec::parse("2005-06-07T00:00:00Z");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[1].canonical(), "2005-06-07T00:00Z");
  EXPECT_EQ(chain[2].canonical(), "2005-06-07T00Z");
  EXPECT_EQ(chain[3].canonical(), "2005-06-07");
  for (const auto& t : chain) EXPECT_EQ(t.unix_seconds(), release.unix_seconds());
}

TEST_F(ResilientTest, ChainRespectsCoarsestBound) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  auto chain = fallback_chain(release, Granularity::kHour);
  ASSERT_EQ(chain.size(), 3u);  // second, minute, hour
  EXPECT_EQ(chain.back().canonical(), "2005-06-06T10Z");
}

TEST_F(ResilientTest, ChainFromDayIsSingleton) {
  auto release = *TimeSpec::parse("2005-06-06");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].canonical(), "2005-06-06");
}

TEST_F(ResilientTest, ChainRejectsInvertedBounds) {
  auto release = *TimeSpec::parse("2005-06-06");
  EXPECT_THROW(fallback_chain(release, Granularity::kSecond), Error);
}

// --- encryption/decryption ---------------------------------------------------

TEST_F(ResilientTest, DecryptsWithExactUpdate) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("resilient message");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  core::KeyUpdate exact = scheme_.issue_update(server_, "2005-06-06T09:00:30Z");
  EXPECT_EQ(res_.decrypt(ct, user_.a, exact), msg);
}

TEST_F(ResilientTest, DecryptsWithEveryFallbackLevel) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("resilient message");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  for (const char* tag : {"2005-06-06T09:01Z", "2005-06-06T10Z", "2005-06-07"}) {
    core::KeyUpdate upd = scheme_.issue_update(server_, tag);
    EXPECT_EQ(res_.decrypt(ct, user_.a, upd), msg) << tag;
  }
}

TEST_F(ResilientTest, RejectsUnrelatedUpdate) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  auto ct = res_.encrypt(to_bytes("m"), user_.pub, server_.pub, release, rng_);
  // An earlier minute (before the release) is not in the chain.
  core::KeyUpdate early = scheme_.issue_update(server_, "2005-06-06T09:00Z");
  EXPECT_THROW(res_.decrypt(ct, user_.a, early), Error);
}

TEST_F(ResilientTest, WrongSecretYieldsGarbage) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("m");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  core::KeyUpdate exact = scheme_.issue_update(server_, "2005-06-06T09:00:30Z");
  core::UserKeyPair eve = scheme_.user_keygen(server_.pub, rng_);
  EXPECT_NE(res_.decrypt(ct, eve.a, exact), msg);
}

TEST_F(ResilientTest, SerializationRoundtrip) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("wire format");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  auto ct2 = core::AnyCiphertext::from_bytes(*params_, ct.to_bytes());
  core::KeyUpdate upd = scheme_.issue_update(server_, "2005-06-07");
  EXPECT_EQ(res_.decrypt(ct2, user_.a, upd), msg);
  // Truncation rejected.
  Bytes enc = ct.to_bytes();
  EXPECT_THROW(core::AnyCiphertext::from_bytes(*params_,
                                               ByteSpan(enc.data(), enc.size() - 1)),
               Error);
}

TEST_F(ResilientTest, CiphertextGrowsOneWrapPerLevel) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg(64, 0xaa);
  auto full = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  auto hour = res_.encrypt(msg, user_.pub, server_.pub, release, rng_,
                           Granularity::kHour);
  EXPECT_EQ(full.wraps.size(), 4u);
  EXPECT_EQ(hour.wraps.size(), 3u);
  EXPECT_GT(full.to_bytes().size(), hour.to_bytes().size());
}

// --- end-to-end with a multi-granularity server --------------------------------

TEST(ResilientEndToEnd, MissedMinuteRecoveredAtNextHour) {
  auto params = params::load("tre-toy-96");
  hashing::HmacDrbg rng(to_bytes("resilient-e2e"));
  Timeline timeline(0);
  TimeServer authority(params, timeline,
                       {Granularity::kMinute, Granularity::kHour}, rng);
  core::TreScheme scheme(params);
  ResilientTre res(params);
  core::UserKeyPair user = scheme.user_keygen(authority.public_key(), rng);

  // Release at minute 30; the receiver's link is down the whole hour.
  TimeSpec release = TimeSpec::from_unix(30 * 60, Granularity::kMinute);
  Bytes msg = to_bytes("do not miss me");
  auto ct = res.encrypt(msg, user.pub, authority.public_key(), release, rng,
                        Granularity::kHour);

  authority.bus().set_loss_probability(1.0);  // drops everything
  std::optional<Bytes> opened;
  // Receiver reconnects at minute 59 and hears only from then on.
  timeline.advance_to(59 * 60);
  authority.tick();
  authority.bus().set_loss_probability(0.0);
  authority.bus().subscribe([&](const core::KeyUpdate& upd) {
    if (opened) return;
    try {
      opened = res.decrypt(ct, user.a, upd);
    } catch (const Error&) {
      // update not in this ciphertext's chain; keep waiting
    }
  });

  // Minute updates 59:xx follow, all AFTER the release but not in the
  // chain; the next hour boundary (60 min) finally opens it.
  authority.run(2 * 3600);
  timeline.advance_to(3600 - 1);
  EXPECT_FALSE(opened.has_value());
  timeline.advance_to(3600);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(ResilientEndToEnd, MultiGranularityServerSignsAllBoundaries) {
  auto params = params::load("tre-toy-96");
  hashing::HmacDrbg rng(to_bytes("multi-gran"));
  Timeline timeline(0);
  TimeServer authority(params, timeline,
                       {Granularity::kHour, Granularity::kDay}, rng);
  authority.run(86400);
  timeline.advance_to(86400);
  // 25 hour-updates (0..24h) + 2 day-updates (day 0 and day 1).
  EXPECT_EQ(authority.archive().size(), 27u);
  EXPECT_TRUE(authority.archive().contains("1970-01-01T05Z"));
  EXPECT_TRUE(authority.archive().contains("1970-01-02"));
}

}  // namespace
}  // namespace tre::server
