// Missing-update resilience (§6 future work): fallback chains,
// disjunctive locking and the multi-granularity server.
#include "timeserver/resilient.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"
#include "timeserver/timeserver.h"

namespace tre::server {
namespace {

class ResilientTest : public ::testing::Test {
 protected:
  ResilientTest()
      : params_(params::load("tre-toy-96")),
        res_(params_),
        scheme_(params_),
        rng_(to_bytes("resilient-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  std::shared_ptr<const params::GdhParams> params_;
  ResilientTre res_;
  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
  core::UserKeyPair user_;
};

// --- fallback_chain ---------------------------------------------------------

TEST_F(ResilientTest, ChainFromSecondGranularity) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].canonical(), "2005-06-06T09:00:30Z");
  EXPECT_EQ(chain[1].canonical(), "2005-06-06T09:01Z");
  EXPECT_EQ(chain[2].canonical(), "2005-06-06T10Z");
  EXPECT_EQ(chain[3].canonical(), "2005-06-07");
  // Never earlier than the release.
  for (const auto& t : chain) EXPECT_GE(t.unix_seconds(), release.unix_seconds());
}

TEST_F(ResilientTest, ChainOnExactBoundaries) {
  // Release exactly at midnight: every coarser boundary is that instant.
  auto release = *TimeSpec::parse("2005-06-07T00:00:00Z");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[1].canonical(), "2005-06-07T00:00Z");
  EXPECT_EQ(chain[2].canonical(), "2005-06-07T00Z");
  EXPECT_EQ(chain[3].canonical(), "2005-06-07");
  for (const auto& t : chain) EXPECT_EQ(t.unix_seconds(), release.unix_seconds());
}

TEST_F(ResilientTest, ChainRespectsCoarsestBound) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  auto chain = fallback_chain(release, Granularity::kHour);
  ASSERT_EQ(chain.size(), 3u);  // second, minute, hour
  EXPECT_EQ(chain.back().canonical(), "2005-06-06T10Z");
}

TEST_F(ResilientTest, ChainFromDayIsSingleton) {
  auto release = *TimeSpec::parse("2005-06-06");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].canonical(), "2005-06-06");
}

TEST_F(ResilientTest, ChainRejectsInvertedBounds) {
  auto release = *TimeSpec::parse("2005-06-06");
  EXPECT_THROW(fallback_chain(release, Granularity::kSecond), Error);
}

TEST_F(ResilientTest, ChainAcrossYearBoundary) {
  // One second before new year: every coarser granule rounds into 2006.
  auto release = *TimeSpec::parse("2005-12-31T23:59:59Z");
  auto chain = fallback_chain(release);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].canonical(), "2005-12-31T23:59:59Z");
  EXPECT_EQ(chain[1].canonical(), "2006-01-01T00:00Z");
  EXPECT_EQ(chain[2].canonical(), "2006-01-01T00Z");
  EXPECT_EQ(chain[3].canonical(), "2006-01-01");
}

TEST_F(ResilientTest, ChainAcrossMonthAndLeapBoundaries) {
  // June has 30 days; the day-level fallback is July 1st.
  auto june = fallback_chain(*TimeSpec::parse("2005-06-30T23:59:59Z"));
  EXPECT_EQ(june.back().canonical(), "2005-07-01");
  // 2004 is a leap year: the day after Feb 28 is Feb 29, not Mar 1.
  auto leap = fallback_chain(*TimeSpec::parse("2004-02-28T23:59:59Z"));
  EXPECT_EQ(leap.back().canonical(), "2004-02-29");
  // 2005 is not: the same civil instant rounds to Mar 1.
  auto plain = fallback_chain(*TimeSpec::parse("2005-02-28T23:59:59Z"));
  EXPECT_EQ(plain.back().canonical(), "2005-03-01");
}

TEST_F(ResilientTest, ChainWithCoarsestEqualToReleaseGranularity) {
  // Degenerate but legal: no coarser levels requested — the chain is
  // just the release tag itself, at any granularity.
  auto minute = *TimeSpec::parse("2005-06-06T09:07Z");
  auto chain = fallback_chain(minute, Granularity::kMinute);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].canonical(), "2005-06-06T09:07Z");
}

TEST_F(ResilientTest, ChainMonotonicInvariantSweep) {
  // For a spread of release instants (boundaries, near-boundaries,
  // arbitrary offsets): instants never decrease along the chain, never
  // precede the release, and granularity strictly coarsens.
  const std::int64_t kDaySecs = 86400;
  std::vector<std::int64_t> sweep;
  for (std::int64_t base : {std::int64_t{0}, std::int64_t{1117990830},
                            std::int64_t{1135036799}, std::int64_t{951868799}}) {
    for (std::int64_t off : {std::int64_t{-1}, std::int64_t{0}, std::int64_t{1},
                             std::int64_t{59}, std::int64_t{3599},
                             kDaySecs - 1}) {
      if (base + off >= 0) sweep.push_back(base + off);
    }
  }
  for (std::int64_t s : sweep) {
    TimeSpec release = TimeSpec::from_unix(s, Granularity::kSecond);
    auto chain = fallback_chain(release);
    ASSERT_EQ(chain.size(), 4u) << s;
    for (size_t i = 0; i < chain.size(); ++i) {
      EXPECT_GE(chain[i].unix_seconds(), release.unix_seconds())
          << "unix " << s << " level " << i << " precedes the release";
      if (i > 0) {
        EXPECT_GE(chain[i].unix_seconds(), chain[i - 1].unix_seconds())
            << "unix " << s << " level " << i << " decreased";
        EXPECT_LT(static_cast<int>(chain[i].granularity()),
                  static_cast<int>(chain[i - 1].granularity()))
            << "unix " << s << " level " << i << " did not coarsen";
      }
    }
  }
}

// --- encryption/decryption ---------------------------------------------------

TEST_F(ResilientTest, DecryptsWithExactUpdate) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("resilient message");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  core::KeyUpdate exact = scheme_.issue_update(server_, "2005-06-06T09:00:30Z");
  EXPECT_EQ(res_.decrypt(ct, user_.a, exact), msg);
}

TEST_F(ResilientTest, DecryptsWithEveryFallbackLevel) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("resilient message");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  for (const char* tag : {"2005-06-06T09:01Z", "2005-06-06T10Z", "2005-06-07"}) {
    core::KeyUpdate upd = scheme_.issue_update(server_, tag);
    EXPECT_EQ(res_.decrypt(ct, user_.a, upd), msg) << tag;
  }
}

TEST_F(ResilientTest, RejectsUnrelatedUpdate) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  auto ct = res_.encrypt(to_bytes("m"), user_.pub, server_.pub, release, rng_);
  // An earlier minute (before the release) is not in the chain.
  core::KeyUpdate early = scheme_.issue_update(server_, "2005-06-06T09:00Z");
  EXPECT_THROW(res_.decrypt(ct, user_.a, early), Error);
}

TEST_F(ResilientTest, WrongSecretYieldsGarbage) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("m");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  core::KeyUpdate exact = scheme_.issue_update(server_, "2005-06-06T09:00:30Z");
  core::UserKeyPair eve = scheme_.user_keygen(server_.pub, rng_);
  EXPECT_NE(res_.decrypt(ct, eve.a, exact), msg);
}

TEST_F(ResilientTest, SerializationRoundtrip) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg = to_bytes("wire format");
  auto ct = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  auto ct2 = core::AnyCiphertext::from_bytes(*params_, ct.to_bytes());
  core::KeyUpdate upd = scheme_.issue_update(server_, "2005-06-07");
  EXPECT_EQ(res_.decrypt(ct2, user_.a, upd), msg);
  // Truncation rejected.
  Bytes enc = ct.to_bytes();
  EXPECT_THROW(core::AnyCiphertext::from_bytes(*params_,
                                               ByteSpan(enc.data(), enc.size() - 1)),
               Error);
}

TEST_F(ResilientTest, CiphertextGrowsOneWrapPerLevel) {
  auto release = *TimeSpec::parse("2005-06-06T09:00:30Z");
  Bytes msg(64, 0xaa);
  auto full = res_.encrypt(msg, user_.pub, server_.pub, release, rng_);
  auto hour = res_.encrypt(msg, user_.pub, server_.pub, release, rng_,
                           Granularity::kHour);
  EXPECT_EQ(full.wraps.size(), 4u);
  EXPECT_EQ(hour.wraps.size(), 3u);
  EXPECT_GT(full.to_bytes().size(), hour.to_bytes().size());
}

// --- end-to-end with a multi-granularity server --------------------------------

TEST(ResilientEndToEnd, MissedMinuteRecoveredAtNextHour) {
  auto params = params::load("tre-toy-96");
  hashing::HmacDrbg rng(to_bytes("resilient-e2e"));
  Timeline timeline(0);
  TimeServer authority(params, timeline,
                       {Granularity::kMinute, Granularity::kHour}, rng);
  core::TreScheme scheme(params);
  ResilientTre res(params);
  core::UserKeyPair user = scheme.user_keygen(authority.public_key(), rng);

  // Release at minute 30; the receiver's link is down the whole hour.
  TimeSpec release = TimeSpec::from_unix(30 * 60, Granularity::kMinute);
  Bytes msg = to_bytes("do not miss me");
  auto ct = res.encrypt(msg, user.pub, authority.public_key(), release, rng,
                        Granularity::kHour);

  authority.bus().set_loss_probability(1.0);  // drops everything
  std::optional<Bytes> opened;
  // Receiver reconnects at minute 59 and hears only from then on.
  timeline.advance_to(59 * 60);
  authority.tick();
  authority.bus().set_loss_probability(0.0);
  authority.bus().subscribe([&](const core::KeyUpdate& upd) {
    if (opened) return;
    try {
      opened = res.decrypt(ct, user.a, upd);
    } catch (const Error&) {
      // update not in this ciphertext's chain; keep waiting
    }
  });

  // Minute updates 59:xx follow, all AFTER the release but not in the
  // chain; the next hour boundary (60 min) finally opens it.
  authority.run(2 * 3600);
  timeline.advance_to(3600 - 1);
  EXPECT_FALSE(opened.has_value());
  timeline.advance_to(3600);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(ResilientEndToEnd, MultiGranularityServerSignsAllBoundaries) {
  auto params = params::load("tre-toy-96");
  hashing::HmacDrbg rng(to_bytes("multi-gran"));
  Timeline timeline(0);
  TimeServer authority(params, timeline,
                       {Granularity::kHour, Granularity::kDay}, rng);
  authority.run(86400);
  timeline.advance_to(86400);
  // 25 hour-updates (0..24h) + 2 day-updates (day 0 and day 1).
  EXPECT_EQ(authority.archive().size(), 27u);
  EXPECT_TRUE(authority.archive().contains("1970-01-01T05Z"));
  EXPECT_TRUE(authority.archive().contains("1970-01-02"));
}

}  // namespace
}  // namespace tre::server
