// Pippenger multi-exponentiation and randomized batch verification.
//
// The acceptance bar has two halves. Correctness: the bucketed
// multi-exp must equal the naive Σ kᵢ·Pᵢ on every edge the engine
// special-cases (empty batch, zero scalars, repeated and infinity
// points), on BOTH backends. Soundness under hostility: an RLC batch
// hiding 1, 2, or ⌈N/2⌉ forged/relabeled updates must bisect to
// EXACTLY the guilty set — zero forged accepts, zero honest drops —
// and the advertised 2^-rlc_bits soundness error must be measurable
// when the scalar width is deliberately crippled.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre {
namespace {

// Per-backend glue the generic tests need: how to build a (fast) scheme
// and how to add two Gu points (the policy has no gu_add — the scheme
// never needed one until the naive reference sum here).
template <class B>
struct Glue;

template <>
struct Glue<core::Tre512Backend> {
  static core::TreScheme scheme() {
    return core::TreScheme(params::load("tre-toy-96"));
  }
  static ec::G1Point add(const params::GdhParams&, const ec::G1Point& a,
                         const ec::G1Point& b) {
    return a + b;
  }
};

template <>
struct Glue<bls12::Bls381Backend> {
  static bls12::Tre381Scheme scheme() { return bls12::make_tre381(); }
  static bls12::G1Point381 add(const bls12::Bls12Ctx& p,
                               const bls12::G1Point381& a,
                               const bls12::G1Point381& b) {
    return p.g1_add(a, b);
  }
};

template <class B>
class BatchVerifyTest : public ::testing::Test {
 protected:
  BatchVerifyTest()
      : scheme_(Glue<B>::scheme()),
        rng_(to_bytes("batch-verify-rng")),
        server_(scheme_.server_keygen(rng_)) {}

  std::string tag_for(size_t i) { return "T" + std::to_string(i); }

  std::vector<core::BasicKeyUpdate<B>> honest(size_t n) {
    std::vector<std::string> tags;
    for (size_t i = 0; i < n; ++i) tags.push_back(tag_for(i));
    return scheme_.issue_updates(server_, tags);
  }

  core::BasicTreScheme<B> scheme_;
  hashing::HmacDrbg rng_;
  core::BasicServerKeyPair<B> server_;
};

using Backends = ::testing::Types<core::Tre512Backend, bls12::Bls381Backend>;
TYPED_TEST_SUITE(BatchVerifyTest, Backends);

// --- multi-exponentiation ----------------------------------------------------

TYPED_TEST(BatchVerifyTest, MultiexpMatchesNaiveSum) {
  using B = TypeParam;
  const auto& p = this->scheme_.params();
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{17}, size_t{64}}) {
    std::vector<typename B::Gu> pts;
    std::vector<core::Scalar> ks;
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(this->scheme_.hash_tag("P" + std::to_string(i)));
      ks.push_back(B::random_scalar(p, this->rng_));
    }
    typename B::Gu want = B::gu_mul(p, pts[0], ks[0]);
    for (size_t i = 1; i < n; ++i) {
      want = Glue<B>::add(p, want, B::gu_mul(p, pts[i], ks[i]));
    }
    typename B::Gu got = B::gu_multiexp(
        p, std::span<const typename B::Gu>(pts),
        std::span<const core::Scalar>(ks), /*threads=*/0);
    EXPECT_TRUE(B::gu_eq(want, got)) << "n=" << n;
  }
}

TYPED_TEST(BatchVerifyTest, MultiexpHandlesEdgeCases) {
  using B = TypeParam;
  const auto& p = this->scheme_.params();

  // Empty batch: identity.
  EXPECT_TRUE(B::gu_is_infinity(
      B::gu_multiexp(p, std::span<const typename B::Gu>(),
                     std::span<const core::Scalar>(), 0)));

  typename B::Gu g = this->scheme_.hash_tag("edge");
  typename B::Gu inf = B::gu_mul(p, g, B::group_order(p));  // q·G = O
  ASSERT_TRUE(B::gu_is_infinity(inf));

  // Zero scalars and infinity points drop out; repeated points combine.
  std::vector<typename B::Gu> pts = {g, inf, g, g};
  std::vector<core::Scalar> ks = {
      core::Scalar::from_u64(5), core::Scalar::from_u64(7),
      core::Scalar::from_u64(0), core::Scalar::from_u64(9)};
  typename B::Gu got = B::gu_multiexp(p, std::span<const typename B::Gu>(pts),
                                      std::span<const core::Scalar>(ks), 0);
  typename B::Gu want = B::gu_mul(p, g, core::Scalar::from_u64(14));
  EXPECT_TRUE(B::gu_eq(want, got));

  // All-zero scalars: identity.
  std::vector<core::Scalar> zeros(4, core::Scalar::from_u64(0));
  EXPECT_TRUE(B::gu_is_infinity(
      B::gu_multiexp(p, std::span<const typename B::Gu>(pts),
                     std::span<const core::Scalar>(zeros), 0)));

  // Serial and pooled execution agree.
  typename B::Gu serial = B::gu_multiexp(
      p, std::span<const typename B::Gu>(pts),
      std::span<const core::Scalar>(ks), /*threads=*/1);
  EXPECT_TRUE(B::gu_eq(got, serial));
}

// --- batch verification ------------------------------------------------------

TYPED_TEST(BatchVerifyTest, AcceptsHonestBatches) {
  using B = TypeParam;
  for (size_t n : {size_t{1}, size_t{2}, size_t{32}}) {
    std::vector<core::BasicKeyUpdate<B>> updates = this->honest(n);
    EXPECT_TRUE(this->scheme_
                    .verify_updates_batch(this->server_.pub, updates,
                                          this->rng_)
                    .empty())
        << "n=" << n;
  }
  std::vector<core::BasicKeyUpdate<B>> empty;
  EXPECT_TRUE(this->scheme_
                  .verify_updates_batch(this->server_.pub, empty, this->rng_)
                  .empty());
}

TYPED_TEST(BatchVerifyTest, BisectsToExactlyTheGuiltySet) {
  using B = TypeParam;
  const auto& p = this->scheme_.params();
  const size_t n = 32;
  for (size_t forged_count : {size_t{1}, size_t{2}, n / 2}) {
    std::vector<core::BasicKeyUpdate<B>> updates = this->honest(n);
    std::vector<size_t> guilty;
    for (size_t k = 0; k < forged_count; ++k) {
      size_t idx = (7 * k + 3) % n;
      switch (k % 3) {
        case 0:  // wrong point: sig doubled, still in the subgroup
          updates[idx].sig =
              B::gu_mul(p, updates[idx].sig, core::Scalar::from_u64(2));
          break;
        case 1:  // relabel: honest sig presented under a foreign tag
          updates[idx].tag = "relabeled-" + std::to_string(k);
          break;
        default:  // substitution: another tag's honest sig
          updates[idx].sig = this->scheme_.hash_tag("alien");
          break;
      }
      guilty.push_back(idx);
    }
    std::sort(guilty.begin(), guilty.end());
    std::vector<size_t> bad = this->scheme_.verify_updates_batch(
        this->server_.pub, updates, this->rng_);
    EXPECT_EQ(bad, guilty) << "forged_count=" << forged_count;
    // Zero forged accepts AND zero honest drops, per item.
    for (size_t i = 0; i < n; ++i) {
      bool flagged = std::binary_search(bad.begin(), bad.end(), i);
      EXPECT_EQ(this->scheme_.verify_update(this->server_.pub, updates[i]),
                !flagged)
          << "i=" << i;
    }
  }
}

TYPED_TEST(BatchVerifyTest, FlagsInfinitySignatures) {
  using B = TypeParam;
  const auto& p = this->scheme_.params();
  std::vector<core::BasicKeyUpdate<B>> updates = this->honest(6);
  updates[4].sig = B::gu_mul(p, updates[4].sig, B::group_order(p));
  ASSERT_TRUE(B::gu_is_infinity(updates[4].sig));
  std::vector<size_t> bad = this->scheme_.verify_updates_batch(
      this->server_.pub, updates, this->rng_);
  EXPECT_EQ(bad, std::vector<size_t>{4});
}

// --- soundness-error bound ---------------------------------------------------

// With rlc_bits = λ the RLC accepts a forged batch iff the forged item's
// scalar annihilates its offset mod the group order — probability
// exactly 2^-λ for uniform scalars. λ = 2 makes that 1/4, large enough
// to measure in a few hundred trials; λ = 16 already pushes a false
// accept out of reach of this test's lifetime. (Default is 128.)
TEST(BatchSoundness, CrippledScalarWidthShowsTheBound) {
  core::TreScheme scheme(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("soundness-rng"));
  core::ServerKeyPair server = scheme.server_keygen(rng);

  core::KeyUpdate good = scheme.issue_update(server, "T-good");
  core::KeyUpdate forged = scheme.issue_update(server, "T-forged");
  forged.sig = forged.sig + forged.sig;  // off by a factor of 2
  std::vector<core::KeyUpdate> batch = {good, forged};

  const int kTrials = 400;
  int false_accepts = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<size_t> bad =
        scheme.verify_updates_batch(server.pub, batch, rng, /*rlc_bits=*/2);
    if (bad.empty()) {
      ++false_accepts;
    } else {
      // When the RLC does fire, attribution is still exact.
      EXPECT_EQ(bad, std::vector<size_t>{1});
    }
  }
  // Binomial(400, 1/4): mean 100, σ ≈ 8.7. ±4.6σ keeps flake odds
  // negligible while still pinning the error to the predicted decade.
  EXPECT_GT(false_accepts, 60);
  EXPECT_LT(false_accepts, 140);

  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(scheme.verify_updates_batch(server.pub, batch, rng,
                                          /*rlc_bits=*/16),
              std::vector<size_t>{1});
  }
}

}  // namespace
}  // namespace tre
