// Contention test for the core::Tuning memoization caches: many threads
// share ONE TreScheme (and therefore one Cache) while exercising every
// cache-touching path — tag hashing, comb tables, key-check memoization,
// pair-base and Miller-line caches — concurrently. Correctness is
// asserted functionally (every decrypt round-trips); the data-race proof
// is TSan's, which is why this binary joins ctest only under
// -DTRE_SANITIZE=thread (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "obs/metrics.h"

namespace tre::core {
namespace {

TEST(SharedSchemeContention, EncryptDecryptIssueAcrossThreads) {
  TreScheme scheme(params::load("tre-toy-96"));  // one shared cache
  hashing::HmacDrbg rng(to_bytes("contention-seed"));
  ServerKeyPair server = scheme.server_keygen(rng);
  UserKeyPair user = scheme.user_keygen(server.pub, rng);

  // Few distinct tags: threads collide on the same cache slots, which is
  // the interesting schedule for TSan.
  const std::vector<std::string> tags = {"T-a", "T-b", "T-c"};
  std::vector<KeyUpdate> updates;
  for (const auto& t : tags) updates.push_back(scheme.issue_update(server, t));

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 6;
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      hashing::HmacDrbg local_rng(to_bytes("worker-" + std::to_string(w)));
      for (int i = 0; i < kItersPerThread; ++i) {
        size_t which = static_cast<size_t>((w + i) % tags.size());
        const std::string& tag = tags[which];
        switch ((w + i) % 4) {
          case 0: {  // basic roundtrip: tag/comb/pair-base/line caches
            Bytes msg = to_bytes("m-" + std::to_string(w) + "-" + std::to_string(i));
            Ciphertext ct =
                scheme.encrypt(msg, user.pub, server.pub, tag, local_rng);
            if (scheme.decrypt(ct, user.a, updates[which]) != msg) ++failures;
            break;
          }
          case 1: {  // FO roundtrip: adds the re-encryption check path
            Bytes msg = to_bytes("fo-" + std::to_string(i));
            FoCiphertext ct =
                scheme.encrypt_fo(msg, user.pub, server.pub, tag, local_rng);
            auto out = scheme.decrypt_fo(ct, user.a, updates[which], server.pub);
            if (!out || *out != msg) ++failures;
            break;
          }
          case 2: {  // server-side bulk issuance on the caller thread
            KeyUpdate upd = scheme.issue_update(server, tag);
            if (!scheme.verify_update(server.pub, upd)) ++failures;
            break;
          }
          default: {  // the memoized receiver-key pairing check
            if (!scheme.verify_user_public_key(server.pub, user.pub)) ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SharedSchemeContention, IssueUpdatesPoolSharesOneCache) {
  TreScheme scheme(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("pool-seed"));
  ServerKeyPair server = scheme.server_keygen(rng);

  std::vector<std::string> tags;
  for (int i = 0; i < 24; ++i) tags.push_back("pool-T" + std::to_string(i));

  // The internal thread pool and an external caller thread hammer the
  // same scheme at once.
  std::vector<KeyUpdate> updates;
  std::thread external([&] {
    for (int i = 0; i < 8; ++i) {
      (void)scheme.issue_update(server, tags[static_cast<size_t>(i) % tags.size()]);
    }
  });
  updates = scheme.issue_updates(server, tags, /*threads=*/4);
  external.join();

  ASSERT_EQ(updates.size(), tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(updates[i].tag, tags[i]);
    EXPECT_TRUE(scheme.verify_update(server.pub, updates[i]));
  }
}

// One unit of work with its own DRBG: the ciphertext it produces is a
// pure function of (seed, msg, tag), independent of which thread runs it
// or what the shared caches held at the time.
struct SealJob {
  std::string seed;
  Bytes msg;
  size_t tag;  // index into the shared tag list
};

Bytes ciphertext_bytes(const Ciphertext& ct) {
  Bytes out = ct.u.to_bytes_compressed();
  out.insert(out.end(), ct.v.begin(), ct.v.end());
  return out;
}

TEST(SharedSchemeContention, MixedSealOpenIssueBitIdentical) {
  // The snapshot caches must be a pure concurrency substrate: a cold
  // shared scheme hammered by racing threads, a warm serial scheme, and
  // a serial scheme in legacy locked mode must all emit byte-identical
  // ciphertexts for the same per-job DRBG seeds.
  auto params = params::load("tre-toy-96");
  hashing::HmacDrbg key_rng(to_bytes("bit-identical-keys"));
  TreScheme keygen_scheme(params);
  ServerKeyPair server = keygen_scheme.server_keygen(key_rng);
  UserKeyPair user = keygen_scheme.user_keygen(server.pub, key_rng);

  const std::vector<std::string> tags = {"epoch-1", "epoch-2", "epoch-3"};
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 4;
  std::vector<SealJob> jobs;
  for (int j = 0; j < kThreads * kJobsPerThread; ++j) {
    jobs.push_back(SealJob{"job-seed-" + std::to_string(j),
                           to_bytes("payload-" + std::to_string(j)),
                           static_cast<size_t>(j) % tags.size()});
  }

  auto run_serial = [&](Tuning tuning) {
    TreScheme scheme(params, tuning);
    std::vector<Bytes> out(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
      hashing::HmacDrbg rng(to_bytes(jobs[j].seed));
      out[j] = ciphertext_bytes(
          scheme.encrypt(jobs[j].msg, user.pub, server.pub, tags[jobs[j].tag], rng));
    }
    return out;
  };
  const std::vector<Bytes> reference = run_serial(Tuning{});
  EXPECT_EQ(run_serial(Tuning::fast_locked()), reference)
      << "snapshot and locked cache substrates disagree";

  // Concurrent run: one cold shared scheme, every thread also opening
  // ciphertexts and issuing updates so all five caches warm up racily.
  TreScheme shared(params);
  std::vector<KeyUpdate> updates;
  for (const auto& t : tags) updates.push_back(shared.issue_update(server, t));
  std::vector<Bytes> concurrent(jobs.size());
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        const size_t j = static_cast<size_t>(w * kJobsPerThread + i);
        hashing::HmacDrbg rng(to_bytes(jobs[j].seed));
        Ciphertext ct = shared.encrypt(jobs[j].msg, user.pub, server.pub,
                                       tags[jobs[j].tag], rng);
        concurrent[j] = ciphertext_bytes(ct);
        if (shared.decrypt(ct, user.a, updates[jobs[j].tag]) != jobs[j].msg) {
          failures.fetch_add(1);
        }
        if (i == 0) {  // keep the issue/verify paths in the race too
          KeyUpdate upd = shared.issue_update(server, tags[jobs[j].tag]);
          if (!shared.verify_update(server.pub, upd)) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(concurrent[j], reference[j]) << "job " << j << " diverged";
  }
}

TEST(PoolContention, ConcurrentParallelForCallers) {
  // Several external threads drive the persistent pool at once; each
  // loop's index space must still be covered exactly once.
  constexpr int kCallers = 4;
  constexpr size_t kN = 2'000;
  std::vector<std::vector<std::atomic<std::uint32_t>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<std::uint32_t>>(kN);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        tre::parallel_for(kN, [&, c](size_t i) {
          hits[static_cast<size_t>(c)][i].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(c)][i].load(), 3u)
          << "caller " << c << " index " << i;
    }
  }
}

TEST(RegistryContention, LockWaitHistogramIsPublished) {
  // The built-in registry.lock_wait histogram exists from birth and
  // appears in every JSON snapshot, even before any contention.
  obs::Registry reg;
  EXPECT_NE(reg.to_json().find("\"registry.lock_wait\""), std::string::npos);
  // It is addressable like any other histogram (and is the same object).
  obs::Histogram& h = reg.histogram("registry.lock_wait");
  h.record(42);
  EXPECT_EQ(reg.histogram("registry.lock_wait").count(), 1u);
}

TEST(RegistryContention, InstrumentsAndSpansUnderConcurrentWriters) {
  // The obs:: layer's thread-safety claims, on trial before TSan: racing
  // registration of the same and of fresh names, relaxed-atomic updates
  // to shared instruments, Span thread-local batches flushing into the
  // global registry, and JSON snapshots taken mid-flight.
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      obs::Counter& c = reg.counter("shared.counter");
      obs::Gauge& g = reg.gauge("shared.gauge");
      obs::Histogram& h = reg.histogram("shared.hist");
      obs::HistogramProbe span_probe("concurrency.span_ns");
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.add(w % 2 == 0 ? 1 : -1);
        h.record(static_cast<std::uint64_t>(i));
        obs::Span span(span_probe);
        if (i % 512 == 0) (void)reg.to_json();
        reg.counter("per-thread." + std::to_string(w)).add();
      }
      obs::flush_this_thread();
    });
  }
  for (auto& t : workers) t.join();

  constexpr std::uint64_t kTotal = std::uint64_t{kThreads} * kIters;
  EXPECT_EQ(reg.counter_value("shared.counter"), kTotal);
  EXPECT_EQ(reg.gauge_value("shared.gauge"), 0);  // 4 up-threads, 4 down
  EXPECT_EQ(reg.histogram("shared.hist").count(), kTotal);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(reg.counter_value("per-thread." + std::to_string(w)),
              std::uint64_t{kIters});
  }
  if constexpr (obs::kEnabled) {
    // Every thread flushed before joining, so the global histogram holds
    // one sample per span.
    EXPECT_EQ(obs::Registry::global().histogram("concurrency.span_ns").count(),
              kTotal);
  }
}

}  // namespace
}  // namespace tre::core
