// Contention test for the core::Tuning memoization caches: many threads
// share ONE TreScheme (and therefore one Cache) while exercising every
// cache-touching path — tag hashing, comb tables, key-check memoization,
// pair-base and Miller-line caches — concurrently. Correctness is
// asserted functionally (every decrypt round-trips); the data-race proof
// is TSan's, which is why this binary joins ctest only under
// -DTRE_SANITIZE=thread (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre::core {
namespace {

TEST(SharedSchemeContention, EncryptDecryptIssueAcrossThreads) {
  TreScheme scheme(params::load("tre-toy-96"));  // one shared cache
  hashing::HmacDrbg rng(to_bytes("contention-seed"));
  ServerKeyPair server = scheme.server_keygen(rng);
  UserKeyPair user = scheme.user_keygen(server.pub, rng);

  // Few distinct tags: threads collide on the same cache slots, which is
  // the interesting schedule for TSan.
  const std::vector<std::string> tags = {"T-a", "T-b", "T-c"};
  std::vector<KeyUpdate> updates;
  for (const auto& t : tags) updates.push_back(scheme.issue_update(server, t));

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 6;
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      hashing::HmacDrbg local_rng(to_bytes("worker-" + std::to_string(w)));
      for (int i = 0; i < kItersPerThread; ++i) {
        size_t which = static_cast<size_t>((w + i) % tags.size());
        const std::string& tag = tags[which];
        switch ((w + i) % 4) {
          case 0: {  // basic roundtrip: tag/comb/pair-base/line caches
            Bytes msg = to_bytes("m-" + std::to_string(w) + "-" + std::to_string(i));
            Ciphertext ct =
                scheme.encrypt(msg, user.pub, server.pub, tag, local_rng);
            if (scheme.decrypt(ct, user.a, updates[which]) != msg) ++failures;
            break;
          }
          case 1: {  // FO roundtrip: adds the re-encryption check path
            Bytes msg = to_bytes("fo-" + std::to_string(i));
            FoCiphertext ct =
                scheme.encrypt_fo(msg, user.pub, server.pub, tag, local_rng);
            auto out = scheme.decrypt_fo(ct, user.a, updates[which], server.pub);
            if (!out || *out != msg) ++failures;
            break;
          }
          case 2: {  // server-side bulk issuance on the caller thread
            KeyUpdate upd = scheme.issue_update(server, tag);
            if (!scheme.verify_update(server.pub, upd)) ++failures;
            break;
          }
          default: {  // the memoized receiver-key pairing check
            if (!scheme.verify_user_public_key(server.pub, user.pub)) ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SharedSchemeContention, IssueUpdatesPoolSharesOneCache) {
  TreScheme scheme(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("pool-seed"));
  ServerKeyPair server = scheme.server_keygen(rng);

  std::vector<std::string> tags;
  for (int i = 0; i < 24; ++i) tags.push_back("pool-T" + std::to_string(i));

  // The internal thread pool and an external caller thread hammer the
  // same scheme at once.
  std::vector<KeyUpdate> updates;
  std::thread external([&] {
    for (int i = 0; i < 8; ++i) {
      (void)scheme.issue_update(server, tags[static_cast<size_t>(i) % tags.size()]);
    }
  });
  updates = scheme.issue_updates(server, tags, /*threads=*/4);
  external.join();

  ASSERT_EQ(updates.size(), tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(updates[i].tag, tags[i]);
    EXPECT_TRUE(scheme.verify_update(server.pub, updates[i]));
  }
}

}  // namespace
}  // namespace tre::core
