// Equivalence tests for the scalar-multiplication engine: every fast path
// (wNAF mul, fixed-window mul_secret, Lim-Lee comb, windowed / unitary
// F_p2 exponentiation) must agree bit-for-bit with a naive reference on
// random inputs and on the boundary scalars 0, 1, 2, q-1, q, q+1.
#include "ec/curve.h"

#include <gtest/gtest.h>

#include "field/fp2.h"
#include "hashing/kdf.h"

namespace tre::ec {
namespace {

using field::Fp;
using field::Fp2;
using field::FpInt;

/// Textbook affine double-and-add, the legacy reference all fast paths
/// are measured against.
G1Point naive_mul(const G1Point& p, FpInt k) {
  G1Point acc = G1Point::infinity(p.curve());
  G1Point base = p;
  while (!k.is_zero()) {
    if (k.is_odd()) acc = acc + base;
    base = base.doubled();
    k = bigint::shr(k, 1);
  }
  return acc;
}

class ScalarMulTest : public ::testing::Test {
 protected:
  ScalarMulTest()
      : curve_(CurveCtx::create("toy", FpInt::from_hex("9b725bbc4bc00b0f29aea58f"),
                                FpInt::from_hex("fa08d6af57"))) {}

  G1Point random_point(int i) {
    return hash_to_g1(curve_.get(), to_bytes("smul-point" + std::to_string(i)));
  }

  FpInt random_scalar(int i) {
    Bytes wide = hashing::oracle_bytes("smul-scalar",
                                       to_bytes(std::to_string(i)), 24);
    auto v = bigint::BigInt<2 * field::kMaxFieldLimbs>::from_bytes_be(wide);
    return bigint::mod_wide(v, curve_->q);
  }

  std::vector<FpInt> edge_scalars() const {
    const FpInt& q = curve_->q;
    return {FpInt{},
            FpInt::from_u64(1),
            FpInt::from_u64(2),
            bigint::sub(q, FpInt::from_u64(1)),
            q,
            bigint::add(q, FpInt::from_u64(1))};
  }

  std::shared_ptr<const CurveCtx> curve_;
};

TEST_F(ScalarMulTest, WnafMulMatchesNaive) {
  for (int i = 0; i < 20; ++i) {
    G1Point p = random_point(i);
    FpInt k = random_scalar(i);
    EXPECT_EQ(p.mul(k), naive_mul(p, k)) << "scalar #" << i;
  }
}

TEST_F(ScalarMulTest, SecretLadderMatchesNaive) {
  for (int i = 0; i < 20; ++i) {
    G1Point p = random_point(i);
    FpInt k = random_scalar(i);
    EXPECT_EQ(p.mul_secret(k), naive_mul(p, k)) << "scalar #" << i;
  }
}

TEST_F(ScalarMulTest, CombMatchesNaive) {
  G1Point p = random_point(0);
  G1Precomp comb(p);
  for (int i = 0; i < 20; ++i) {
    FpInt k = random_scalar(i);
    G1Point expected = naive_mul(p, k);
    EXPECT_EQ(comb.mul(k), expected) << "scalar #" << i;
    EXPECT_EQ(comb.mul_secret(k), expected) << "scalar #" << i;
  }
}

TEST_F(ScalarMulTest, EdgeScalars) {
  G1Point p = random_point(1);
  G1Precomp comb(p);
  for (const FpInt& k : edge_scalars()) {
    G1Point expected = naive_mul(p, k);
    EXPECT_EQ(p.mul(k), expected);
    EXPECT_EQ(p.mul_secret(k), expected);
    EXPECT_EQ(comb.mul(k), expected);
    EXPECT_EQ(comb.mul_secret(k), expected);
  }
  // q·P == O for a subgroup point: explicit order check.
  EXPECT_TRUE(p.mul(curve_->q).is_infinity());
  EXPECT_TRUE(comb.mul_secret(curve_->q).is_infinity());
}

TEST_F(ScalarMulTest, CombFallsBackBeyondCoveredWidth) {
  G1Point p = random_point(2);
  G1Precomp comb(p);
  // 2q is one bit wider than the comb covers; the fallback must still be
  // exact (and equal the reduced multiple, since p has order q).
  FpInt wide = bigint::add(curve_->q, curve_->q);
  ASSERT_GT(wide.bit_length(), comb.covered_bits());
  EXPECT_EQ(comb.mul(wide), naive_mul(p, wide));
  EXPECT_EQ(comb.mul_secret(wide), naive_mul(p, wide));
}

TEST_F(ScalarMulTest, TwoTorsionPoint) {
  // (-1, 0) is the 2-torsion point of y^2 = x^3 + 1: outside G_1, so the
  // comb refuses it, but the generic ladders must still follow the group
  // law (k·P is P for odd k, O for even k).
  const field::FpCtx* fp = curve_->fp.get();
  G1Point t = G1Point::make(curve_.get(), -Fp::one(fp), Fp::zero(fp));
  ASSERT_FALSE(t.in_subgroup());
  EXPECT_TRUE(t.doubled().is_infinity());
  for (const FpInt& k : edge_scalars()) {
    G1Point expected = k.is_odd() ? t : G1Point::infinity(curve_.get());
    EXPECT_EQ(t.mul(k), expected);
    EXPECT_EQ(t.mul_secret(k), expected);
  }
  EXPECT_THROW(G1Precomp comb(t), Error);
}

TEST_F(ScalarMulTest, InfinityBase) {
  G1Point o = G1Point::infinity(curve_.get());
  EXPECT_TRUE(o.mul(random_scalar(3)).is_infinity());
  EXPECT_TRUE(o.mul_secret(random_scalar(3)).is_infinity());
}

// --- F_p2 exponentiation ----------------------------------------------------

TEST_F(ScalarMulTest, Fp2WindowPowMatchesBinary) {
  const field::FpCtx* fp = curve_->fp.get();
  for (int i = 0; i < 10; ++i) {
    Fp2 z(Fp::from_bytes_wide(fp, hashing::oracle_bytes(
                                      "smul-fp2a", to_bytes(std::to_string(i)), 24)),
          Fp::from_bytes_wide(fp, hashing::oracle_bytes(
                                      "smul-fp2b", to_bytes(std::to_string(i)), 24)));
    FpInt e = random_scalar(100 + i);
    EXPECT_EQ(z.pow(e), z.pow_binary(e)) << "exponent #" << i;
    EXPECT_EQ(z.pow(FpInt{}), Fp2::one(fp));
    EXPECT_EQ(z.pow(FpInt::from_u64(1)), z);
  }
}

TEST_F(ScalarMulTest, Fp2UnitaryPowMatchesBinaryOnNormOne) {
  const field::FpCtx* fp = curve_->fp.get();
  for (int i = 0; i < 10; ++i) {
    Fp2 z(Fp::from_bytes_wide(fp, hashing::oracle_bytes(
                                      "smul-fp2u", to_bytes(std::to_string(i)), 24)),
          Fp::from_bytes_wide(fp, hashing::oracle_bytes(
                                      "smul-fp2v", to_bytes(std::to_string(i)), 24)));
    ASSERT_FALSE(z.is_zero());
    Fp2 u = z.conjugate() * z.inverse();  // norm(u) == 1 by multiplicativity
    ASSERT_EQ(u.norm(), Fp::one(fp));
    for (const FpInt& e : edge_scalars()) {
      EXPECT_EQ(u.pow_unitary(e), u.pow_binary(e));
    }
    EXPECT_EQ(u.pow_unitary(random_scalar(200 + i)),
              u.pow_binary(random_scalar(200 + i)));
  }
}

TEST_F(ScalarMulTest, Fp2UnitaryPowRejectsNonUnitary) {
  const field::FpCtx* fp = curve_->fp.get();
  Fp2 z(Fp::from_u64(fp, 7), Fp::from_u64(fp, 11));
  ASSERT_NE(z.norm(), Fp::one(fp));
  EXPECT_THROW(z.pow_unitary(FpInt::from_u64(5)), Error);
}

// --- multi-exponentiation (signed-digit vs unsigned vs naive) ----------------
//
// The parity the engine's header promises: the signed-digit recoding
// (src/ec/multiexp.h) must agree with the unsigned running-sum fold and
// with the naive per-point reference on random batches AND on every
// carry-propagation edge (all-ones digits, top-window borrow, q-sized
// scalars). g1_multiexp auto-selects between the two folds by cost, so
// checking it against g1_multiexp_unsigned exercises whichever variant
// the estimate picked for each shape.

TEST_F(ScalarMulTest, MultiexpMatchesNaiveSum) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{5}, size_t{33}}) {
    std::vector<G1Point> pts;
    std::vector<FpInt> ks;
    G1Point want = G1Point::infinity(curve_.get());
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(random_point(static_cast<int>(100 * n + i)));
      ks.push_back(random_scalar(static_cast<int>(100 * n + i)));
      want = want + naive_mul(pts[i], ks[i]);
    }
    EXPECT_EQ(g1_multiexp(curve_.get(), pts, ks), want) << "n=" << n;
    EXPECT_EQ(g1_multiexp_unsigned(curve_.get(), pts, ks), want) << "n=" << n;
  }
}

TEST_F(ScalarMulTest, MultiexpSignedCarryEdges) {
  // Scalars built to stress the signed recode: maximal digits in every
  // window (so each window borrows into the next), the borrow landing in
  // the synthetic top window, and the group-order boundary.
  std::vector<FpInt> edges = edge_scalars();
  edges.push_back(FpInt::from_hex("ffffffffffffffffffffffff"));  // all ones
  edges.push_back(FpInt::from_hex("800000000000000000000001"));
  edges.push_back(FpInt::from_hex("7fffffffffffffffffffffff"));
  for (size_t i = 0; i < edges.size(); ++i) {
    // A batch of identical edge scalars: every point hits the same
    // bucket, the worst case for a recode bug to survive averaging.
    std::vector<G1Point> pts;
    std::vector<FpInt> ks;
    G1Point want = G1Point::infinity(curve_.get());
    for (int j = 0; j < 4; ++j) {
      pts.push_back(random_point(300 + static_cast<int>(i) * 4 + j));
      ks.push_back(edges[i]);
      want = want + naive_mul(pts[j], edges[i]);
    }
    EXPECT_EQ(g1_multiexp(curve_.get(), pts, ks), want) << "edge #" << i;
    EXPECT_EQ(g1_multiexp_unsigned(curve_.get(), pts, ks), want)
        << "edge #" << i;
    // Single wide scalar: the shape whose cost estimate favours the
    // signed fold — the regression that pins the carry bug.
    std::vector<G1Point> one_pt = {pts[0]};
    std::vector<FpInt> one_k = {edges[i]};
    EXPECT_EQ(g1_multiexp(curve_.get(), one_pt, one_k),
              naive_mul(pts[0], edges[i]))
        << "edge #" << i;
  }
}

TEST_F(ScalarMulTest, MultiexpSignedAndUnsignedAgreeOnMixedBatch) {
  // Mixed magnitudes so different windows go dark for different points;
  // both folds and the naive sum must agree regardless of which variant
  // the auto-dispatch picks.
  std::vector<G1Point> pts;
  std::vector<FpInt> ks;
  G1Point want = G1Point::infinity(curve_.get());
  std::vector<FpInt> mixed = {FpInt{},
                              FpInt::from_u64(1),
                              FpInt::from_u64(0xff),
                              FpInt::from_u64(0x8000),
                              random_scalar(400),
                              bigint::sub(curve_->q, FpInt::from_u64(1))};
  for (size_t i = 0; i < mixed.size(); ++i) {
    pts.push_back(random_point(400 + static_cast<int>(i)));
    ks.push_back(mixed[i]);
    want = want + naive_mul(pts[i], mixed[i]);
  }
  G1Point auto_sum = g1_multiexp(curve_.get(), pts, ks);
  G1Point unsigned_sum = g1_multiexp_unsigned(curve_.get(), pts, ks);
  EXPECT_EQ(auto_sum, want);
  EXPECT_EQ(unsigned_sum, want);
  EXPECT_EQ(auto_sum, unsigned_sum);
}

// --- Fp inversion (single-mul Montgomery re-entry) --------------------------

TEST_F(ScalarMulTest, FpInverseRoundTrip) {
  const field::FpCtx* fp = curve_->fp.get();
  EXPECT_EQ(Fp::one(fp).inverse(), Fp::one(fp));
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::from_bytes_wide(
        fp, hashing::oracle_bytes("smul-inv", to_bytes(std::to_string(i)), 24));
    ASSERT_FALSE(a.is_zero());
    EXPECT_EQ(a * a.inverse(), Fp::one(fp));
    EXPECT_EQ(a.inverse().inverse(), a);
  }
}

}  // namespace
}  // namespace tre::ec
