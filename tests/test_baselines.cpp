// Correctness and behavioural tests for every baseline the paper
// compares against (DESIGN.md §2).
#include <gtest/gtest.h>

#include "baselines/bf_ibe.h"
#include "baselines/hybrid.h"
#include "baselines/may_escrow.h"
#include "baselines/mont_timevault.h"
#include "baselines/rivest_pk_list.h"
#include "baselines/rivest_server.h"
#include "baselines/rsw_puzzle.h"
#include "baselines/timed_commitment.h"
#include "bls/bls.h"
#include "core/tre.h"

namespace tre::baselines {
namespace {

constexpr const char* kTag = "2005-06-06T09:00:00Z";

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : params_(params::load("tre-toy-96")), rng_(to_bytes("baseline-tests")) {}

  std::shared_ptr<const params::GdhParams> params_;
  hashing::HmacDrbg rng_;
};

// --- Boneh-Franklin IBE --------------------------------------------------------

TEST_F(BaselinesTest, IbeRoundtrip) {
  BfIbe ibe(params_);
  ServerKeyPair master = ibe.setup(rng_);
  IbePrivateKey alice = ibe.extract(master, "alice");
  EXPECT_TRUE(ibe.verify_private_key(master.pub, alice));

  Bytes msg = to_bytes("ibe message");
  auto ct = ibe.encrypt(msg, "alice", master.pub, rng_);
  EXPECT_EQ(ibe.decrypt(ct, alice), msg);

  IbePrivateKey bob = ibe.extract(master, "bob");
  EXPECT_NE(ibe.decrypt(ct, bob), msg);
  EXPECT_FALSE(ibe.verify_private_key(master.pub, IbePrivateKey{"alice", bob.d}));
}

// --- Hybrid PKE + IBE -----------------------------------------------------------

class HybridTest : public BaselinesTest {
 protected:
  HybridTest()
      : hybrid_(params_),
        tre_scheme_(params_),
        time_server_(tre_scheme_.server_keygen(rng_)),
        receiver_(hybrid_.pke_keygen(rng_)) {}

  HybridTre hybrid_;
  core::TreScheme tre_scheme_;
  core::ServerKeyPair time_server_;
  PkeKeyPair receiver_;
};

TEST_F(HybridTest, Roundtrip) {
  Bytes msg = to_bytes("hybrid construction");
  auto ct = hybrid_.encrypt(msg, receiver_, time_server_.pub, kTag, rng_);
  core::KeyUpdate upd = tre_scheme_.issue_update(time_server_, kTag);
  EXPECT_EQ(hybrid_.decrypt(ct, receiver_.b, upd), msg);
}

TEST_F(HybridTest, NeedsBothComponents) {
  Bytes msg = to_bytes("hybrid construction");
  auto ct = hybrid_.encrypt(msg, receiver_, time_server_.pub, kTag, rng_);
  // Wrong receiver secret: garbage even with the right update.
  core::KeyUpdate upd = tre_scheme_.issue_update(time_server_, kTag);
  PkeKeyPair eve = hybrid_.pke_keygen(rng_);
  EXPECT_NE(hybrid_.decrypt(ct, eve.b, upd), msg);
  // Right secret, wrong update: also garbage.
  core::KeyUpdate early = tre_scheme_.issue_update(time_server_, "1999-01-01");
  EXPECT_NE(hybrid_.decrypt(ct, receiver_.b, early), msg);
}

TEST_F(HybridTest, CiphertextCarriesTwoGroupElements) {
  // The size overhead TRE halves (E2): hybrid = 2 points + body,
  // TRE = 1 point + body.
  Bytes msg(100, 0xab);
  auto hybrid_ct = hybrid_.encrypt(msg, receiver_, time_server_.pub, kTag, rng_);
  core::UserKeyPair user = tre_scheme_.user_keygen(time_server_.pub, rng_);
  auto tre_ct = tre_scheme_.encrypt(msg, user.pub, time_server_.pub, kTag, rng_);
  size_t point = params_->g1_compressed_bytes();
  EXPECT_EQ(hybrid_ct.to_bytes().size() - tre_ct.to_bytes().size(), point);
}

TEST_F(HybridTest, SerializationRoundtrip) {
  Bytes msg = to_bytes("wire");
  auto ct = hybrid_.encrypt(msg, receiver_, time_server_.pub, kTag, rng_);
  auto ct2 = HybridCiphertext::from_bytes(*params_, ct.to_bytes());
  core::KeyUpdate upd = tre_scheme_.issue_update(time_server_, kTag);
  EXPECT_EQ(hybrid_.decrypt(ct2, receiver_.b, upd), msg);
}

// --- Mont / HP Time Vault ----------------------------------------------------------

TEST_F(BaselinesTest, TimeVaultRoundtripAndLinearCost) {
  MontTimeVault vault(params_, rng_);
  for (int i = 0; i < 10; ++i) vault.register_user("user-" + std::to_string(i));
  EXPECT_EQ(vault.user_count(), 10u);

  Bytes msg = to_bytes("vault message");
  auto ct = vault.encrypt(msg, "user-3", kTag, rng_);

  auto keys = vault.epoch_tick(kTag);
  ASSERT_EQ(keys.size(), 10u);  // one unicast per user: O(N) per epoch
  EXPECT_EQ(vault.stats().keys_extracted, 10u);
  EXPECT_GT(vault.stats().bytes_unicast,
            10 * params_->g1_compressed_bytes() - 1);

  // Find user-3's key and decrypt.
  for (const auto& key : keys) {
    if (key.id == "user-3||" + std::string(kTag)) {
      EXPECT_EQ(vault.decrypt(ct, key), msg);
      return;
    }
  }
  FAIL() << "user-3 key not issued";
}

TEST_F(BaselinesTest, TimeVaultKeyIsTimeScoped) {
  MontTimeVault vault(params_, rng_);
  vault.register_user("alice");
  Bytes msg = to_bytes("later");
  auto ct = vault.encrypt(msg, "alice", "2005-06-07T00:00:00Z", rng_);
  auto keys_today = vault.epoch_tick(kTag);
  EXPECT_NE(vault.decrypt(ct, keys_today[0]), msg);
}

TEST_F(BaselinesTest, TimeVaultEscrowProblem) {
  // The server reads user mail — the paper's argument against this design.
  MontTimeVault vault(params_, rng_);
  vault.register_user("alice");
  Bytes msg = to_bytes("supposedly private");
  auto ct = vault.encrypt(msg, "alice", kTag, rng_);
  EXPECT_EQ(vault.server_decrypt(ct, "alice", kTag), msg);
}

// --- Rivest interactive server --------------------------------------------------------

TEST_F(BaselinesTest, RivestServerRoundtrip) {
  RivestServer server(to_bytes("server-seed"));
  Bytes msg = to_bytes("submitted in the clear");
  RivestCiphertext ct = server.submit("alice", msg, /*epoch=*/42);
  Bytes key = server.publish_epoch_key(42);
  EXPECT_EQ(RivestServer::decrypt(ct, key), msg);
}

TEST_F(BaselinesTest, RivestServerLearnsEverything) {
  RivestServer server(to_bytes("server-seed"));
  Bytes msg = to_bytes("submitted in the clear");
  (void)server.submit("alice", msg, 42);
  ASSERT_EQ(server.server_knowledge().size(), 1u);
  const auto& record = server.server_knowledge()[0];
  EXPECT_EQ(record.sender_id, "alice");      // sender anonymity lost
  EXPECT_EQ(record.message, msg);            // plaintext disclosed
  EXPECT_EQ(record.release_epoch, 42u);      // release time disclosed
  EXPECT_EQ(server.interactions(), 1u);      // one round-trip per message
}

TEST_F(BaselinesTest, RivestServerWrongKeyRejected) {
  RivestServer server(to_bytes("server-seed"));
  RivestCiphertext ct = server.submit("alice", to_bytes("m"), 42);
  Bytes wrong = server.publish_epoch_key(43);
  EXPECT_THROW(RivestServer::decrypt(ct, wrong), Error);
}

// --- Rivest offline public-key list -----------------------------------------------------

TEST_F(BaselinesTest, PkListRoundtripWithinHorizon) {
  RivestPkList list(params_, /*horizon=*/16, rng_);
  Bytes msg = to_bytes("epoch 7 message");
  auto ct = list.encrypt(msg, 7, rng_);
  EXPECT_EQ(RivestPkList::decrypt(*params_, ct, list.release_epoch_secret(7)), msg);
  EXPECT_NE(RivestPkList::decrypt(*params_, ct, list.release_epoch_secret(8)), msg);
}

TEST_F(BaselinesTest, PkListHorizonIsHardLimit) {
  RivestPkList list(params_, /*horizon=*/16, rng_);
  // A TRE sender can pick any future instant; this sender cannot.
  EXPECT_THROW(list.encrypt(to_bytes("m"), 16, rng_), Error);
  EXPECT_THROW(list.encrypt(to_bytes("m"), 1000000, rng_), Error);
}

TEST_F(BaselinesTest, PkListPublicationGrowsLinearly) {
  RivestPkList small(params_, 8, rng_);
  RivestPkList large(params_, 64, rng_);
  EXPECT_EQ(large.published_bytes(), 8 * small.published_bytes());
}

// --- May escrow agent ---------------------------------------------------------------------

TEST_F(BaselinesTest, EscrowStoresAndReleases) {
  MayEscrowAgent agent;
  agent.deposit("alice", "bob", to_bytes("first"), 100);
  agent.deposit("carol", "dave", to_bytes("second"), 200);
  EXPECT_EQ(agent.stored_messages(), 2u);
  EXPECT_GT(agent.stored_bytes(), 0u);

  auto due = agent.release_due(150);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].recipient, "bob");
  EXPECT_EQ(due[0].message, to_bytes("first"));
  EXPECT_EQ(agent.stored_messages(), 1u);

  EXPECT_TRUE(agent.release_due(150).empty());  // nothing newly due
  auto rest = agent.release_due(1000);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(agent.stored_messages(), 0u);
  EXPECT_EQ(agent.stored_bytes(), 0u);
  EXPECT_EQ(agent.total_deposits(), 2u);
}

TEST_F(BaselinesTest, EscrowReleasesInTimeOrder) {
  MayEscrowAgent agent;
  agent.deposit("s", "r", to_bytes("late"), 300);
  agent.deposit("s", "r", to_bytes("early"), 100);
  auto due = agent.release_due(1000);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].message, to_bytes("early"));
  EXPECT_EQ(due[1].message, to_bytes("late"));
}

// --- RSW time-lock puzzle --------------------------------------------------------------------

TEST_F(BaselinesTest, RswSealSolveRoundtrip) {
  RswTrapdoor td = Rsw::keygen(rng_, /*modulus_bits=*/256);
  Bytes key = rng_.bytes(32);
  RswPuzzle puzzle = Rsw::seal(td, key, /*t=*/1000, rng_);
  EXPECT_EQ(Rsw::solve(puzzle), key);
}

TEST_F(BaselinesTest, RswBudgetModelsSlowMachines) {
  RswTrapdoor td = Rsw::keygen(rng_, 256);
  Bytes key = rng_.bytes(32);
  RswPuzzle puzzle = Rsw::seal(td, key, 1000, rng_);
  bool done = true;
  // A machine that only manages half the squarings gets nothing.
  Bytes partial = Rsw::solve_with_budget(puzzle, 500, &done);
  EXPECT_FALSE(done);
  EXPECT_TRUE(partial.empty());
  // Enough budget solves it.
  Bytes full = Rsw::solve_with_budget(puzzle, 2000, &done);
  EXPECT_TRUE(done);
  EXPECT_EQ(full, key);
}

TEST_F(BaselinesTest, RswSolveTimeScalesWithT) {
  // Sequentiality proxy: t and 2t puzzles both solve, with the work done
  // equal to t squarings (checked via the budget API boundary).
  RswTrapdoor td = Rsw::keygen(rng_, 256);
  Bytes key = rng_.bytes(16);
  RswPuzzle p1 = Rsw::seal(td, key, 600, rng_);
  bool done = false;
  (void)Rsw::solve_with_budget(p1, 599, &done);
  EXPECT_FALSE(done);  // 599 squarings are not enough: no shortcut
  (void)Rsw::solve_with_budget(p1, 600, &done);
  EXPECT_TRUE(done);
}

TEST_F(BaselinesTest, RswDifferentKeysDifferentSeals) {
  RswTrapdoor td = Rsw::keygen(rng_, 256);
  RswPuzzle p1 = Rsw::seal(td, rng_.bytes(32), 100, rng_);
  RswPuzzle p2 = Rsw::seal(td, rng_.bytes(32), 100, rng_);
  EXPECT_NE(p1.sealed_key, p2.sealed_key);
}

TEST_F(BaselinesTest, RswKeygenValidatesSizes) {
  EXPECT_THROW(Rsw::keygen(rng_, 32), Error);
  EXPECT_THROW(Rsw::keygen(rng_, 1 << 20), Error);
}

TEST_F(BaselinesTest, RswCalibration) {
  double rate = Rsw::measure_squarings_per_second(256, rng_);
  EXPECT_GT(rate, 1000.0);  // any machine does >1k small squarings/sec
}

// --- Timed commitments / timed signatures (§2.1: [6], [12]) ---------------------

TEST_F(BaselinesTest, TimedCommitmentCommitterOpensInstantly) {
  RswTrapdoor td = Rsw::keygen(rng_, 256);
  Bytes msg = to_bytes("committed value");
  auto [c, key] = TimedCommitmentScheme::commit(td, msg, /*t=*/5000, rng_);
  EXPECT_EQ(TimedCommitmentScheme::open(c, key), msg);
  EXPECT_TRUE(TimedCommitmentScheme::verify_opening(c, key, msg));
}

TEST_F(BaselinesTest, TimedCommitmentForcedOpening) {
  RswTrapdoor td = Rsw::keygen(rng_, 256);
  Bytes msg = to_bytes("recoverable without the committer");
  auto [c, key] = TimedCommitmentScheme::commit(td, msg, 2000, rng_);
  (void)key;  // the committer vanished
  EXPECT_EQ(TimedCommitmentScheme::forced_open(c), msg);
}

TEST_F(BaselinesTest, TimedCommitmentBindingHolds) {
  RswTrapdoor td = Rsw::keygen(rng_, 256);
  Bytes msg = to_bytes("bound");
  auto [c, key] = TimedCommitmentScheme::commit(td, msg, 1000, rng_);
  Bytes wrong_key = rng_.bytes(32);
  EXPECT_THROW(TimedCommitmentScheme::open(c, wrong_key), Error);
  EXPECT_FALSE(TimedCommitmentScheme::verify_opening(c, key, to_bytes("other")));
  EXPECT_FALSE(TimedCommitmentScheme::verify_opening(c, wrong_key, msg));
}

TEST_F(BaselinesTest, GarayJakobssonTimedSignature) {
  // [12]: put a standard signature inside a timed commitment. Here the
  // signature is BLS from our own stack; forced opening releases a
  // publicly verifiable signature even if the signer absconds.
  bls::BlsScheme bls(params_);
  bls::KeyPair signer = bls.keygen(rng_);
  Bytes contract = to_bytes("I will pay 100 units on 2005-07-01");
  bls::Signature sig = bls.sign(signer, contract);

  RswTrapdoor td = Rsw::keygen(rng_, 256);
  auto [c, key] = TimedCommitmentScheme::commit(
      td, sig.sig.to_bytes_compressed(), 2000, rng_);
  (void)key;

  Bytes released = TimedCommitmentScheme::forced_open(c);
  bls::Signature recovered{ec::G1Point::from_bytes(params_->ctx(), released)};
  EXPECT_TRUE(bls.verify(signer.g, signer.pk, contract, recovered));
}

}  // namespace
}  // namespace tre::baselines
