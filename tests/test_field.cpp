// Field axioms and square-root behaviour for F_p and F_p2.
#include "field/fp.h"

#include <gtest/gtest.h>

#include "field/fp2.h"
#include "hashing/drbg.h"

namespace tre::field {
namespace {

// 96-bit toy prime p = 12*q*r - 1 (p ≡ 3 mod 4).
const char* kToyP = "9b725bbc4bc00b0f29aea58f";

class FpTest : public ::testing::Test {
 protected:
  FpTest() : ctx_(FpInt::from_hex(kToyP)), rng_(to_bytes("field-tests")) {}
  FpCtx ctx_;
  hashing::HmacDrbg rng_;
};

TEST_F(FpTest, ConstantsAndConversions) {
  EXPECT_TRUE(Fp::zero(&ctx_).is_zero());
  EXPECT_FALSE(Fp::one(&ctx_).is_zero());
  EXPECT_EQ(Fp::from_u64(&ctx_, 42).to_int(), FpInt::from_u64(42));
  // Reduction of values >= p.
  FpInt big = bigint::add(ctx_.p, FpInt::from_u64(5));
  EXPECT_EQ(Fp::from_int(&ctx_, big), Fp::from_u64(&ctx_, 5));
}

TEST_F(FpTest, BytesRoundtrip) {
  Fp a = Fp::random(&ctx_, rng_);
  EXPECT_EQ(Fp::from_bytes(&ctx_, a.to_bytes()), a);
  EXPECT_EQ(a.to_bytes().size(), ctx_.byte_len);
  // Unreduced canonical input is rejected.
  Bytes pb = ctx_.p.to_bytes_be(ctx_.byte_len);
  EXPECT_THROW(Fp::from_bytes(&ctx_, pb), Error);
}

TEST_F(FpTest, FromBytesWideReduces) {
  Bytes wide(2 * ctx_.byte_len, 0xff);
  Fp v = Fp::from_bytes_wide(&ctx_, wide);
  EXPECT_LT(v.to_int(), ctx_.p);
}

TEST_F(FpTest, FieldAxioms) {
  for (int i = 0; i < 25; ++i) {
    Fp a = Fp::random(&ctx_, rng_);
    Fp b = Fp::random(&ctx_, rng_);
    Fp c = Fp::random(&ctx_, rng_);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Fp::zero(&ctx_), a);
    EXPECT_EQ(a * Fp::one(&ctx_), a);
    EXPECT_EQ(a + (-a), Fp::zero(&ctx_));
    EXPECT_EQ(a - b, a + (-b));
    EXPECT_EQ(a.squared(), a * a);
    EXPECT_EQ(a.doubled(), a + a);
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.inverse(), Fp::one(&ctx_));
    }
  }
}

TEST_F(FpTest, InverseOfZeroThrows) {
  EXPECT_THROW(Fp::zero(&ctx_).inverse(), Error);
}

TEST_F(FpTest, PowMatchesRepeatedMul) {
  Fp a = Fp::random(&ctx_, rng_);
  Fp acc = Fp::one(&ctx_);
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(a.pow(FpInt::from_u64(e)), acc);
    acc = acc * a;
  }
}

TEST_F(FpTest, FermatLittleTheorem) {
  FpInt p_minus_1 = bigint::sub(ctx_.p, FpInt::from_u64(1));
  for (int i = 0; i < 5; ++i) {
    Fp a = Fp::random(&ctx_, rng_);
    if (a.is_zero()) continue;
    EXPECT_EQ(a.pow(p_minus_1), Fp::one(&ctx_));
  }
}

TEST_F(FpTest, SqrtOfSquares) {
  for (int i = 0; i < 25; ++i) {
    Fp a = Fp::random(&ctx_, rng_);
    Fp sq = a.squared();
    auto root = sq.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == -a);
  }
}

TEST_F(FpTest, SqrtOfNonResidueFails) {
  // -1 is a non-residue when p ≡ 3 (mod 4).
  EXPECT_FALSE((-Fp::one(&ctx_)).sqrt().has_value());
}

TEST_F(FpTest, ContextMismatchThrows) {
  FpCtx other(FpInt::from_hex("fa08d6af57"));
  Fp a = Fp::one(&ctx_);
  Fp b = Fp::one(&other);
  EXPECT_THROW(a + b, Error);
  EXPECT_THROW(a * b, Error);
}

// ---------------------------------------------------------------------------

class Fp2Test : public FpTest {};

TEST_F(Fp2Test, ConstantsAndEmbedding) {
  EXPECT_TRUE(Fp2::zero(&ctx_).is_zero());
  EXPECT_TRUE(Fp2::one(&ctx_).is_one());
  Fp a = Fp::random(&ctx_, rng_);
  Fp2 e = Fp2::from_fp(a);
  EXPECT_EQ(e.re(), a);
  EXPECT_TRUE(e.im().is_zero());
}

TEST_F(Fp2Test, ISquaredIsMinusOne) {
  Fp2 i(Fp::zero(&ctx_), Fp::one(&ctx_));
  EXPECT_EQ(i.squared(), -Fp2::one(&ctx_));
  EXPECT_EQ(i * i, -Fp2::one(&ctx_));
}

TEST_F(Fp2Test, FieldAxioms) {
  auto rand2 = [&] { return Fp2(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_)); };
  for (int i = 0; i < 25; ++i) {
    Fp2 a = rand2(), b = rand2(), c = rand2();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.squared(), a * a);
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.inverse(), Fp2::one(&ctx_));
    }
  }
}

TEST_F(Fp2Test, ConjugationIsFrobenius) {
  // z^p == conj(z) for all z in F_p2 when p ≡ 3 (mod 4).
  Fp2 z(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_));
  EXPECT_EQ(z.pow(ctx_.p), z.conjugate());
}

TEST_F(Fp2Test, NormMultiplicative) {
  Fp2 a(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_));
  Fp2 b(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_));
  EXPECT_EQ((a * b).norm(), a.norm() * b.norm());
}

TEST_F(Fp2Test, UnitaryInverseOnNormOne) {
  // Build a norm-1 element z = w^(p-1) and check conj == inverse.
  Fp2 w(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_));
  Fp2 z = w.conjugate() * w.inverse();
  EXPECT_EQ(z.norm(), Fp::one(&ctx_));
  EXPECT_EQ(z * z.unitary_inverse(), Fp2::one(&ctx_));
}

TEST_F(Fp2Test, PowLaws) {
  Fp2 a(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_));
  FpInt e1 = FpInt::from_u64(12345);
  FpInt e2 = FpInt::from_u64(6789);
  EXPECT_EQ(a.pow(e1) * a.pow(e2), a.pow(bigint::add(e1, e2)));
  EXPECT_EQ(a.pow(FpInt{}), Fp2::one(&ctx_));
}

TEST_F(Fp2Test, BytesRoundtrip) {
  Fp2 a(Fp::random(&ctx_, rng_), Fp::random(&ctx_, rng_));
  EXPECT_EQ(Fp2::from_bytes(&ctx_, a.to_bytes()), a);
  EXPECT_EQ(a.to_bytes().size(), 2 * ctx_.byte_len);
}

}  // namespace
}  // namespace tre::field
