// Discrete-event network simulation and the mirrored update archive.
#include "simnet/mirrors.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::simnet {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : timeline_(0), net_(timeline_, to_bytes("simnet-tests")) {}

  server::Timeline timeline_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLinkDelay) {
  NodeId a = net_.add_node("a");
  NodeId b = net_.add_node("b");
  net_.connect(a, b, LinkSpec{.base_delay = 5});
  std::int64_t arrived_at = -1;
  net_.send(a, b, 100, [&] { arrived_at = timeline_.now(); });
  timeline_.advance_to(4);
  EXPECT_EQ(arrived_at, -1);
  timeline_.advance_to(5);
  EXPECT_EQ(arrived_at, 5);
  EXPECT_EQ(net_.stats().delivered, 1u);
  EXPECT_EQ(net_.stats().bytes_carried, 100u);
  EXPECT_EQ(net_.inbound_count(b), 1u);
  EXPECT_EQ(net_.inbound_count(a), 0u);
}

TEST_F(NetworkTest, JitterStaysInRange) {
  NodeId a = net_.add_node("a");
  NodeId b = net_.add_node("b");
  net_.connect(a, b, LinkSpec{.base_delay = 10, .jitter = 5});
  std::vector<std::int64_t> arrivals;
  for (int i = 0; i < 50; ++i) {
    net_.send(a, b, 1, [&] { arrivals.push_back(timeline_.now()); });
  }
  timeline_.advance_to(100);
  ASSERT_EQ(arrivals.size(), 50u);
  for (auto t : arrivals) {
    EXPECT_GE(t, 10);
    EXPECT_LE(t, 15);
  }
}

TEST_F(NetworkTest, LossDropsSomeMessages) {
  NodeId a = net_.add_node("a");
  NodeId b = net_.add_node("b");
  net_.connect(a, b, LinkSpec{.loss = 0.5});
  int received = 0;
  for (int i = 0; i < 200; ++i) net_.send(a, b, 1, [&] { ++received; });
  timeline_.advance_to(1);
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(net_.stats().dropped + net_.stats().delivered, 200u);
}

TEST_F(NetworkTest, NoLinkMeansDrop) {
  NodeId a = net_.add_node("a");
  NodeId b = net_.add_node("b");
  bool delivered = false;
  net_.send(a, b, 1, [&] { delivered = true; });
  timeline_.advance_to(10);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().dropped, 1u);
}

TEST_F(NetworkTest, ValidatesInputs) {
  NodeId a = net_.add_node("a");
  EXPECT_THROW(net_.connect(a, a, LinkSpec{}), Error);
  EXPECT_THROW(net_.connect(a, 99, LinkSpec{}), Error);
  EXPECT_THROW(net_.send(a, 99, 1, [] {}), Error);
  EXPECT_THROW(net_.connect(a, a, LinkSpec{.loss = 1.5}), Error);
  EXPECT_EQ(net_.name_of(a), "a");
}

// --- MirroredArchive ------------------------------------------------------------

class MirrorTest : public ::testing::Test {
 protected:
  MirrorTest()
      : timeline_(0),
        net_(timeline_, to_bytes("mirror-tests")),
        params_(params::load("tre-toy-96")),
        scheme_(params_),
        rng_(to_bytes("mirror-rng")),
        server_(scheme_.server_keygen(rng_)) {}

  core::KeyUpdate update(const char* tag) { return scheme_.issue_update(server_, tag); }

  server::Timeline timeline_;
  Network net_;
  std::shared_ptr<const params::GdhParams> params_;
  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
};

TEST_F(MirrorTest, ReplicationReachesAllMirrors) {
  MirroredArchive cluster(params_, net_, timeline_, 3, LinkSpec{.base_delay = 2});
  cluster.publish(update("T1"));
  EXPECT_EQ(cluster.stats().replication_messages, 3u);

  // A receiver polling a mirror BEFORE replication lands needs a retry.
  NodeId rx = net_.add_node("receiver");
  std::int64_t got_at = -1;
  cluster.fetch(rx, 1, "T1", LinkSpec{.base_delay = 1}, /*poll_period=*/4,
                /*max_polls=*/5, [&](const core::KeyUpdate& u) {
                  got_at = timeline_.now();
                  EXPECT_TRUE(scheme_.verify_update(server_.pub, u));
                });
  timeline_.advance_to(60);
  // Poll 1 arrives at t=1 (mirror still empty; the replica lands at
  // t=2); the receiver's backoff timer fires poll 2 at t=4, which
  // reaches the mirror at t=5 and the response arrives at t=6.
  EXPECT_EQ(got_at, 6);
  EXPECT_EQ(cluster.stats().fetch_successes, 1u);
  EXPECT_EQ(cluster.stats().mirror_requests, 2u);
  EXPECT_EQ(cluster.stats().origin_requests, 0u);
}

TEST_F(MirrorTest, OriginServesDirectly) {
  MirroredArchive cluster(params_, net_, timeline_, 2, LinkSpec{.base_delay = 10});
  cluster.publish(update("T1"));
  NodeId rx = net_.add_node("receiver");
  bool got = false;
  cluster.fetch(rx, MirroredArchive::kOrigin, "T1", LinkSpec{.base_delay = 1}, 4, 5,
                [&](const core::KeyUpdate&) { got = true; });
  timeline_.advance_to(10);
  EXPECT_TRUE(got);
  EXPECT_EQ(cluster.stats().origin_requests, 1u);
}

TEST_F(MirrorTest, FetchTimesOutWhenUpdateNeverAppears) {
  MirroredArchive cluster(params_, net_, timeline_, 1, LinkSpec{});
  NodeId rx = net_.add_node("receiver");
  bool got = false;
  cluster.fetch(rx, 0, "never-published", LinkSpec{.base_delay = 1}, 2, 3,
                [&](const core::KeyUpdate&) { got = true; });
  timeline_.advance_to(100);
  EXPECT_FALSE(got);
  EXPECT_EQ(cluster.stats().fetch_timeouts, 1u);
  EXPECT_EQ(cluster.stats().mirror_requests, 3u);
}

TEST_F(MirrorTest, ManyReceiversOffloadTheOrigin) {
  MirroredArchive cluster(params_, net_, timeline_, 4, LinkSpec{.base_delay = 1});
  cluster.publish(update("T1"));
  timeline_.advance_to(2);  // replication done
  int got = 0;
  for (size_t i = 0; i < 40; ++i) {
    NodeId rx = net_.add_node("rx-" + std::to_string(i));
    // Poll period > round-trip time, so a present update costs one poll.
    cluster.fetch(rx, i % 4, "T1", LinkSpec{.base_delay = 1}, 4, 3,
                  [&](const core::KeyUpdate&) { ++got; });
  }
  timeline_.advance_to(30);
  EXPECT_EQ(got, 40);
  EXPECT_EQ(cluster.stats().origin_requests, 0u);  // fully offloaded
  EXPECT_EQ(cluster.stats().mirror_requests, 40u);
  EXPECT_EQ(net_.inbound_count(cluster.origin()), 0u);
}

TEST_F(MirrorTest, PollingBacksOffExponentially) {
  MirroredArchive cluster(params_, net_, timeline_, 1, LinkSpec{});
  NodeId rx = net_.add_node("receiver");
  cluster.fetch(rx, 0, "absent", LinkSpec{.base_delay = 1}, /*poll_period=*/2,
                /*max_polls=*/5, [](const core::KeyUpdate&) { FAIL(); });
  // Polls fire at t = 0, 2, 6, 14, 30 (doubling, capped at 8x base).
  const std::int64_t expected[] = {0, 2, 6, 14, 30};
  for (size_t i = 0; i < 5; ++i) {
    timeline_.advance_to(expected[i]);
    EXPECT_EQ(cluster.stats().mirror_requests, i + 1) << "poll " << i;
  }
  timeline_.advance_to(100);
  EXPECT_EQ(cluster.stats().mirror_requests, 5u);
  EXPECT_EQ(cluster.stats().fetch_timeouts, 1u);
}

TEST_F(MirrorTest, GarbageReplyCountsAsFailedPoll) {
  FaultPlan plan(to_bytes("garbage-mirror"));
  net_.set_fault_plan(&plan);
  MirroredArchive cluster(params_, net_, timeline_, 1, LinkSpec{.base_delay = 1});
  plan.set_byzantine(cluster.mirror_node(0), ByzantineMode::kGarbage);
  cluster.publish(update("T1"));
  timeline_.advance_to(2);  // replication done

  NodeId rx = net_.add_node("receiver");
  bool got = false;
  cluster.fetch(rx, 0, "T1", LinkSpec{.base_delay = 1}, /*poll_period=*/2,
                /*max_polls=*/3, [&](const core::KeyUpdate&) { got = true; });
  timeline_.advance_to(100);
  // Every reply was garbage: each poll failed, nothing was accepted.
  EXPECT_FALSE(got);
  EXPECT_EQ(cluster.stats().fetch_rejected, 3u);
  EXPECT_EQ(cluster.stats().fetch_timeouts, 1u);
  EXPECT_EQ(cluster.stats().fetch_successes, 0u);
  EXPECT_EQ(cluster.stats().byzantine_replies, 3u);
}

TEST_F(MirrorTest, UnverifiableReplyCountsAsFailedPoll) {
  // The mirror is honest at the wire level, but the caller's verifier
  // (here: against a DIFFERENT server key) must still be able to refuse.
  MirroredArchive cluster(params_, net_, timeline_, 1, LinkSpec{.base_delay = 1});
  cluster.publish(update("T1"));
  timeline_.advance_to(2);

  core::ServerKeyPair other = scheme_.server_keygen(rng_);
  NodeId rx = net_.add_node("receiver");
  bool got = false;
  cluster.fetch(
      rx, 0, "T1", LinkSpec{.base_delay = 1}, /*poll_period=*/2, /*max_polls=*/2,
      [&](const core::KeyUpdate&) { got = true; },
      [&](const core::KeyUpdate& u) { return scheme_.verify_update(other.pub, u); });
  timeline_.advance_to(100);
  EXPECT_FALSE(got);
  EXPECT_EQ(cluster.stats().fetch_rejected, 2u);
  EXPECT_EQ(cluster.stats().fetch_timeouts, 1u);
}

TEST_F(MirrorTest, RelabelledReplyIsRejectedByTagCheck) {
  FaultPlan plan(to_bytes("relabel-mirror"));
  net_.set_fault_plan(&plan);
  MirroredArchive cluster(params_, net_, timeline_, 1, LinkSpec{.base_delay = 1});
  plan.set_byzantine(cluster.mirror_node(0), ByzantineMode::kRelabel);
  cluster.publish(update("stale"));
  cluster.publish(update("T1"));
  timeline_.advance_to(2);

  NodeId rx = net_.add_node("receiver");
  bool got = false;
  size_t verifier_saw_wrong_tag = 0;
  cluster.fetch(
      rx, 0, "T1", LinkSpec{.base_delay = 1}, /*poll_period=*/2, /*max_polls=*/2,
      [&](const core::KeyUpdate&) { got = true; },
      [&](const core::KeyUpdate& u) {
        if (u.tag != "T1") ++verifier_saw_wrong_tag;
        return scheme_.verify_update(server_.pub, u);
      });
  timeline_.advance_to(100);
  // The relabelled update claims tag T1 but carries the stale tag's
  // signature: the tag check passes, self-authentication fails.
  EXPECT_FALSE(got);
  EXPECT_EQ(verifier_saw_wrong_tag, 0u);  // relabelling forges the tag field
  EXPECT_EQ(cluster.stats().fetch_rejected, 2u);
  EXPECT_GE(cluster.stats().byzantine_replies, 2u);
}

}  // namespace
}  // namespace tre::simnet
