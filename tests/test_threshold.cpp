// k-of-n threshold time server: sharing, partial verification, Lagrange
// combination, fault tolerance and composition with the plain scheme.
#include "core/threshold.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::core {
namespace {

constexpr const char* kTag = "2030-01-01T00:00:00Z";

class ThresholdTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {
 protected:
  ThresholdTest()
      : ttre_(params::load("tre-toy-96")),
        rng_(to_bytes("threshold-tests")) {
    auto [n, k] = GetParam();
    std::tie(key_, shares_) = ttre_.setup(ThresholdConfig{n, k}, rng_);
  }

  std::vector<PartialUpdate> partials_from(std::initializer_list<size_t> indices,
                                           std::string_view tag = kTag) {
    std::vector<PartialUpdate> out;
    for (size_t i : indices) out.push_back(ttre_.issue_partial(shares_[i - 1], tag));
    return out;
  }

  ThresholdTre ttre_;
  hashing::HmacDrbg rng_;
  ThresholdServerKey key_;
  std::vector<ServerShare> shares_;
};

TEST_P(ThresholdTest, PartialsVerify) {
  for (const auto& share : shares_) {
    PartialUpdate p = ttre_.issue_partial(share, kTag);
    EXPECT_TRUE(ttre_.verify_partial(key_, p));
  }
}

TEST_P(ThresholdTest, ForgedPartialRejected) {
  PartialUpdate p = ttre_.issue_partial(shares_[0], kTag);
  PartialUpdate relabeled{p.index, "other-tag", p.sig};
  EXPECT_FALSE(ttre_.verify_partial(key_, relabeled));
  PartialUpdate wrong_index{2 <= key_.config.n ? 2u : 1u, p.tag, p.sig};
  if (key_.config.n >= 2) EXPECT_FALSE(ttre_.verify_partial(key_, wrong_index));
  PartialUpdate doubled{p.index, p.tag, p.sig.doubled()};
  EXPECT_FALSE(ttre_.verify_partial(key_, doubled));
}

TEST_P(ThresholdTest, AnyKSubsetCombinesToTheSameStandardUpdate) {
  auto [n, k] = GetParam();
  // First k servers.
  std::vector<PartialUpdate> front;
  for (size_t i = 1; i <= k; ++i) front.push_back(ttre_.issue_partial(shares_[i - 1], kTag));
  KeyUpdate u1 = ttre_.combine(key_, front);
  // Last k servers.
  std::vector<PartialUpdate> back;
  for (size_t i = n - k + 1; i <= n; ++i) {
    back.push_back(ttre_.issue_partial(shares_[i - 1], kTag));
  }
  KeyUpdate u2 = ttre_.combine(key_, back);
  EXPECT_EQ(u1, u2);
  // And the result verifies against the ordinary group key.
  EXPECT_TRUE(ttre_.scheme().verify_update(key_.group, u1));
}

TEST_P(ThresholdTest, CombinedUpdateDecryptsOrdinaryCiphertexts) {
  auto [n, k] = GetParam();
  (void)n;
  // A user binds to the GROUP key exactly as with a single server.
  const TreScheme& scheme = ttre_.scheme();
  UserKeyPair user = scheme.user_keygen(key_.group, rng_);
  Bytes msg = to_bytes("threshold-released");
  Ciphertext ct = scheme.encrypt(msg, user.pub, key_.group, kTag, rng_);

  std::vector<PartialUpdate> partials;
  for (size_t i = 1; i <= k; ++i) partials.push_back(ttre_.issue_partial(shares_[i - 1], kTag));
  KeyUpdate update = ttre_.combine(key_, partials);
  EXPECT_EQ(scheme.decrypt(ct, user.a, update), msg);
}

TEST_P(ThresholdTest, FewerThanKFails) {
  auto [n, k] = GetParam();
  (void)n;
  if (k < 2) GTEST_SKIP();
  std::vector<PartialUpdate> too_few;
  for (size_t i = 1; i < k; ++i) too_few.push_back(ttre_.issue_partial(shares_[i - 1], kTag));
  EXPECT_THROW(ttre_.combine(key_, too_few), Error);
}

TEST_P(ThresholdTest, WrongSubsetShapeRejected) {
  auto [n, k] = GetParam();
  (void)n;
  if (k < 2) GTEST_SKIP();
  // Duplicate index.
  std::vector<PartialUpdate> dup(k, ttre_.issue_partial(shares_[0], kTag));
  EXPECT_THROW(ttre_.combine(key_, dup), Error);
  // Mixed tags.
  std::vector<PartialUpdate> mixed;
  mixed.push_back(ttre_.issue_partial(shares_[0], kTag));
  for (size_t i = 2; i <= k; ++i) {
    mixed.push_back(ttre_.issue_partial(shares_[i - 1], "other"));
  }
  EXPECT_THROW(ttre_.combine(key_, mixed), Error);
}

TEST_P(ThresholdTest, CorruptPartialYieldsInvalidUpdate) {
  auto [n, k] = GetParam();
  (void)n;
  std::vector<PartialUpdate> partials;
  for (size_t i = 1; i <= k; ++i) partials.push_back(ttre_.issue_partial(shares_[i - 1], kTag));
  partials[0].sig = partials[0].sig.doubled();  // undetected corruption
  KeyUpdate bad = ttre_.combine(key_, partials);
  // combine() cannot detect it, but the self-authentication check does.
  EXPECT_FALSE(ttre_.scheme().verify_update(key_.group, bad));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ThresholdTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1}, std::pair<size_t, size_t>{3, 2},
                      std::pair<size_t, size_t>{5, 3}, std::pair<size_t, size_t>{7, 5}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "_k" +
             std::to_string(info.param.second);
    });

TEST(ThresholdEdge, RejectsBadConfig) {
  ThresholdTre ttre(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("edge"));
  EXPECT_THROW(ttre.setup(ThresholdConfig{3, 0}, rng), Error);
  EXPECT_THROW(ttre.setup(ThresholdConfig{3, 4}, rng), Error);
  EXPECT_THROW(ttre.setup(ThresholdConfig{0, 0}, rng), Error);
}

TEST(ThresholdEdge, LivenessUnderFailures) {
  // n = 5, k = 3: any two servers may crash and releases still happen.
  ThresholdTre ttre(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("liveness"));
  auto [key, shares] = ttre.setup(ThresholdConfig{5, 3}, rng);
  // Servers 2 and 4 are down; 1, 3, 5 publish.
  std::vector<PartialUpdate> alive = {ttre.issue_partial(shares[0], kTag),
                                      ttre.issue_partial(shares[2], kTag),
                                      ttre.issue_partial(shares[4], kTag)};
  KeyUpdate update = ttre.combine(key, alive);
  EXPECT_TRUE(ttre.scheme().verify_update(key.group, update));
}

}  // namespace
}  // namespace tre::core
