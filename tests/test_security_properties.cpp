// Executable documentation of the scheme's security properties — both
// the guarantees and the documented NON-guarantees the paper's §5
// discussion implies.
#include <gtest/gtest.h>

#include "core/policylock.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre::core {
namespace {

constexpr const char* kTag = "2005-06-06T09:00:00Z";

class SecurityProperties : public ::testing::Test {
 protected:
  SecurityProperties()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("security-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair server_;
  UserKeyPair user_;
};

TEST_F(SecurityProperties, BasicSchemeIsMalleableByDesign) {
  // The §5.1 scheme is one-way/CPA only: XORing the body flips plaintext
  // bits predictably. This is exactly why the paper prescribes FO/REACT
  // for real use; the test pins the behaviour so nobody mistakes the
  // basic mode for authenticated encryption.
  Bytes msg = to_bytes("PAY 100");
  Ciphertext ct = scheme_.encrypt(msg, user_.pub, server_.pub, kTag, rng_);
  Bytes delta = xor_bytes(to_bytes("PAY 100"), to_bytes("PAY 999"));
  xor_inplace(ct.v, delta);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), to_bytes("PAY 999"));
}

TEST_F(SecurityProperties, FoDefeatsTheSameMauling) {
  Bytes msg = to_bytes("PAY 100");
  FoCiphertext ct = scheme_.encrypt_fo(msg, user_.pub, server_.pub, kTag, rng_);
  Bytes delta = xor_bytes(to_bytes("PAY 100"), to_bytes("PAY 999"));
  xor_inplace(ct.c_msg, delta);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_FALSE(scheme_.decrypt_fo(ct, user_.a, upd, server_.pub).has_value());
}

TEST_F(SecurityProperties, CiphertextRevealsNoPartyIdentifiers) {
  // User anonymity (§1, §3): the ciphertext bytes contain no receiver or
  // sender identifier — only a fresh group element and a masked body.
  // Structural check: two different receivers' ciphertexts for the same
  // message are format-identical and unlinkable without the keys.
  UserKeyPair other = scheme_.user_keygen(server_.pub, rng_);
  Bytes msg(64, 0x42);
  Ciphertext c1 = scheme_.encrypt(msg, user_.pub, server_.pub, kTag, rng_);
  Ciphertext c2 = scheme_.encrypt(msg, other.pub, server_.pub, kTag, rng_);
  EXPECT_EQ(c1.to_bytes().size(), c2.to_bytes().size());
  // Neither contains the receivers' public key bytes.
  Bytes pk1 = user_.pub.to_bytes();
  Bytes wire1 = c1.to_bytes();
  auto contains = [](const Bytes& hay, const Bytes& needle) {
    return std::search(hay.begin(), hay.end(), needle.begin() + 1,
                       needle.begin() + 16) != hay.end();
  };
  EXPECT_FALSE(contains(wire1, pk1));
}

TEST_F(SecurityProperties, UpdateRevealsOnlyTheTime) {
  // The update is (T, s·H1(T)): its bytes are the time string plus a
  // point that is a deterministic function of (s, T) — no user data can
  // be present because the server holds none (§3).
  KeyUpdate u1 = scheme_.issue_update(server_, kTag);
  KeyUpdate u2 = scheme_.issue_update(server_, kTag);
  EXPECT_EQ(u1.to_bytes(), u2.to_bytes());  // no per-receiver variation
}

TEST_F(SecurityProperties, ServerCannotDecryptWithoutUserSecret) {
  // §3's "highest possible privacy": unlike ID-TRE, the server holding s
  // and the update cannot open mail. Simulate the server's best effort:
  // it knows s, I_T, the ciphertext and both public keys.
  Bytes msg = to_bytes("private from the server too");
  Ciphertext ct = scheme_.encrypt(msg, user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  // The server's decryption attempts with everything it has:
  // ê(U, I_T)^s and ê(U, I_T) — both miss the factor a.
  Gt k1 = pairing::pair(ct.u, upd.sig);
  Bytes try1 = xor_bytes(ct.v, scheme_.mask_h2(k1, ct.v.size()));
  Bytes try2 = xor_bytes(ct.v, scheme_.mask_h2(k1.pow(server_.s), ct.v.size()));
  EXPECT_NE(try1, msg);
  EXPECT_NE(try2, msg);
}

TEST_F(SecurityProperties, RogueGeneratorConcernIsDetectable) {
  // §5.1 point 6: a cheating server could pick G = H1(T*) hoping to
  // eavesdrop messages at T*. A sender can screen for this exact match.
  ec::G1Point suspicious = scheme_.hash_tag(kTag);
  ServerPublicKey rogue{suspicious, suspicious.mul(server_.s)};
  EXPECT_TRUE(rogue.g == scheme_.hash_tag(kTag));  // the sender's check
  EXPECT_FALSE(server_.pub.g == scheme_.hash_tag(kTag));  // honest keygen
}

TEST_F(SecurityProperties, RandomnessReuseAcrossTagsIsContained) {
  // The disjunctive lock reuses r across wraps; the masks differ because
  // the pairing values differ per tag. Pin that two wraps of the same
  // session key never collide.
  PolicyLock lock(params::load("tre-toy-96"));
  std::vector<std::string> conds = {"c1", "c2"};
  AnyCiphertext ct = lock.lock_any(to_bytes("m"), user_.pub, server_.pub, conds, rng_);
  ASSERT_EQ(ct.wraps.size(), 2u);
  EXPECT_NE(ct.wraps[0].second, ct.wraps[1].second);
}

}  // namespace
}  // namespace tre::core
