// Known-answer and behavioural tests for the hashing module.
#include <gtest/gtest.h>

#include "hashing/drbg.h"
#include "hashing/hmac.h"
#include "hashing/kdf.h"
#include "hashing/sha256.h"

namespace tre::hashing {
namespace {

// --- SHA-256 NIST / FIPS 180-4 known answers -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finalize();
  EXPECT_EQ(to_hex(d),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteSpan(msg.data(), split));
    h.update(ByteSpan(msg.data() + split, msg.size() - split));
    auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), sha256(msg)) << "split=" << split;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(to_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Boundary lengths around the 64-byte block / 56-byte padding threshold.
TEST(Sha256, PaddingBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    Bytes msg(len, 0x41);
    Bytes once = sha256(msg);
    Sha256 h;
    for (size_t i = 0; i < len; ++i) h.update(ByteSpan(&msg[i], 1));
    auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), once) << "len=" << len;
  }
}

// --- HMAC-SHA256 (RFC 4231) -------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, ConcatMatchesFlat) {
  Bytes key = to_bytes("k");
  Bytes a = to_bytes("hello ");
  Bytes b = to_bytes("world");
  EXPECT_EQ(hmac_sha256_concat(key, {a, b}), hmac_sha256(key, to_bytes("hello world")));
}

// --- HKDF (RFC 5869) ---------------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  EXPECT_EQ(to_hex(hkdf_sha256(salt, ikm, info, 42)),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  Bytes ikm(22, 0x0b);
  EXPECT_EQ(to_hex(hkdf_sha256({}, ikm, {}, 42)),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, OutputLengthExact) {
  for (size_t n : {1u, 31u, 32u, 33u, 64u, 255u}) {
    EXPECT_EQ(hkdf_sha256({}, to_bytes("ikm"), {}, n).size(), n);
  }
}

// --- Oracle bytes / keystream -----------------------------------------------

TEST(OracleBytes, DomainSeparation) {
  Bytes in = to_bytes("input");
  EXPECT_NE(oracle_bytes("TRE-H2", in, 32), oracle_bytes("TRE-H3", in, 32));
}

TEST(OracleBytes, DeterministicAndPrefixFree) {
  Bytes in = to_bytes("input");
  Bytes a = oracle_bytes("TRE-H2", in, 16);
  Bytes b = oracle_bytes("TRE-H2", in, 32);
  EXPECT_EQ(a, Bytes(b.begin(), b.begin() + 16));
  EXPECT_EQ(b, oracle_bytes("TRE-H2", in, 32));
}

TEST(OracleBytes, LongOutput) {
  // Exceeds the 255-block HKDF cap; falls to the counter stream.
  Bytes out = oracle_bytes("TRE-H2", to_bytes("x"), 10000);
  EXPECT_EQ(out.size(), 10000u);
  // Not all-zero, and later blocks differ from early ones.
  EXPECT_NE(Bytes(out.begin(), out.begin() + 32), Bytes(out.end() - 32, out.end()));
}

TEST(Keystream, DependsOnKeyAndNonce) {
  Bytes k1 = to_bytes("key1"), k2 = to_bytes("key2"), n = to_bytes("n");
  EXPECT_NE(keystream(k1, n, 64), keystream(k2, n, 64));
  EXPECT_NE(keystream(k1, n, 64), keystream(k1, to_bytes("m"), 64));
  EXPECT_EQ(keystream(k1, n, 64), keystream(k1, n, 64));
}

// --- HMAC-DRBG ----------------------------------------------------------------

TEST(Drbg, DeterministicPerSeed) {
  HmacDrbg a(to_bytes("seed"));
  HmacDrbg b(to_bytes("seed"));
  EXPECT_EQ(a.bytes(48), b.bytes(48));
  EXPECT_EQ(a.bytes(7), b.bytes(7));
}

TEST(Drbg, DifferentSeedsDiverge) {
  HmacDrbg a(to_bytes("seed-a"));
  HmacDrbg b(to_bytes("seed-b"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, StreamAdvances) {
  HmacDrbg a(to_bytes("seed"));
  Bytes first = a.bytes(32);
  Bytes second = a.bytes(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, ReseedChangesStream) {
  HmacDrbg a(to_bytes("seed"));
  HmacDrbg b(to_bytes("seed"));
  (void)a.bytes(16);
  (void)b.bytes(16);
  b.reseed(to_bytes("extra"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(SystemRandom, ProducesDistinctOutput) {
  SystemRandom r;
  Bytes a = r.bytes(32);
  Bytes b = r.bytes(32);
  EXPECT_NE(a, b);
  EXPECT_NE(a, Bytes(32, 0));
}

}  // namespace
}  // namespace tre::hashing
