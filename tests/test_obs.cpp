// obs:: instrument semantics, registry behaviour, Span batching and the
// JSON snapshot. The instruments (Counter/Gauge/Histogram/Registry) are
// functional in EVERY build — those tests are unconditional. Probe tests
// (CounterProbe/Span target the global registry) gate their value
// expectations on obs::kEnabled so this binary also passes under
// -DTRE_METRICS=OFF, where probes compile to no-ops.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace tre::obs {
namespace {

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SignedSetAddReset) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
  g.add(-3);
  EXPECT_EQ(g.value(), 0);
  g.set(1);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 32) - 1), 32u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 32), 33u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::kBuckets, 65u);  // every bucket_of result is in range
}

TEST(Histogram, BucketBoundIsLargestAdmitted) {
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~std::uint64_t{0});
  for (size_t b = 1; b < 64; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_bound(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_bound(b) + 1), b + 1);
  }
}

TEST(Histogram, RecordCountSumBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.record(0);
  h.record(5);   // bucket 3
  h.record(6);   // bucket 3
  h.record(100); // bucket 7
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(7), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, MergeAddsDeltas) {
  Histogram h;
  h.record(5);
  std::uint64_t deltas[Histogram::kBuckets] = {};
  deltas[3] = 2;  // two more samples in [4, 8)
  deltas[0] = 1;  // one zero
  h.merge(deltas, 3, 13);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 18u);
  EXPECT_EQ(h.bucket(3), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, QuantileBounds) {
  Histogram h;
  EXPECT_EQ(h.quantile_bound(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.record(3);    // bucket 2, bound 3
  for (int i = 0; i < 10; ++i) h.record(1000); // bucket 10, bound 1023
  EXPECT_EQ(h.quantile_bound(0.5), 3u);
  EXPECT_EQ(h.quantile_bound(0.90), 3u);
  EXPECT_EQ(h.quantile_bound(0.95), 1023u);
  EXPECT_EQ(h.quantile_bound(1.0), 1023u);
}

TEST(RegistryTest, NamesAreStableAndUnique) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  Counter& c = reg.counter("y");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.add(3);
  EXPECT_EQ(reg.counter_value("x"), 3u);
  // Counter, gauge and histogram namespaces are independent.
  Gauge& g = reg.gauge("x");
  g.set(-1);
  EXPECT_EQ(reg.gauge_value("x"), -1);
  EXPECT_EQ(reg.counter_value("x"), 3u);
  (void)reg.histogram("x");
}

TEST(RegistryTest, UnregisteredNamesReadZero) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
  EXPECT_EQ(reg.gauge_value("never.registered"), 0);
}

TEST(RegistryTest, ResetZeroesEverythingKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(5);
  h.record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.add();  // handle still live after reset
  EXPECT_EQ(reg.counter_value("c"), 1u);
}

TEST(RegistryTest, JsonSnapshotShape) {
  Registry reg;
  reg.counter("requests").add(7);
  reg.gauge("depth").set(-2);
  Histogram& h = reg.histogram("lat_ns");
  h.record(100);
  h.record(200);
  std::string json = reg.to_json();
  // Spot-check the documented shape without a JSON parser.
  EXPECT_NE(json.find("\"metrics_enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"lat_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 300"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, JsonIndentAppliesMargin) {
  Registry reg;
  reg.counter("c").add(1);
  std::string json = reg.to_json(4);
  EXPECT_EQ(json.rfind("    {", 0), 0u) << json;
  // Every line carries the margin.
  for (size_t pos = json.find('\n'); pos != std::string::npos;
       pos = json.find('\n', pos + 1)) {
    if (pos + 1 < json.size()) {
      EXPECT_EQ(json.compare(pos + 1, 4, "    "), 0) << "line at " << pos;
    }
  }
}

TEST(RegistryTest, JsonEscapesNames) {
  Registry reg;
  reg.counter("quote\"back\\slash").add(1);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos) << json;
}

TEST(Probes, CounterProbeTargetsGlobalRegistry) {
  const char* name = "test_obs.counter_probe";
  std::uint64_t before = Registry::global().counter_value(name);
  CounterProbe probe(name);
  probe.add();
  probe.add(9);
  std::uint64_t after = Registry::global().counter_value(name);
  EXPECT_EQ(after - before, kEnabled ? 10u : 0u);
}

TEST(Probes, SpanBatchFlushesOnDemand) {
  const char* name = "test_obs.span_flush";
  HistogramProbe probe(name);
  constexpr int kSpans = 150;  // crosses the internal flush threshold
  for (int i = 0; i < kSpans; ++i) {
    Span span(probe);
  }
  flush_this_thread();
  if constexpr (kEnabled) {
    EXPECT_EQ(Registry::global().histogram(name).count(),
              static_cast<std::uint64_t>(kSpans));
  }
}

TEST(Probes, SpanStopIsIdempotent) {
  const char* name = "test_obs.span_stop";
  HistogramProbe probe(name);
  {
    Span span(probe);
    span.stop();
    span.stop();  // second stop and the destructor must not re-record
  }
  flush_this_thread();
  if constexpr (kEnabled) {
    EXPECT_EQ(Registry::global().histogram(name).count(), 1u);
  }
}

TEST(Probes, SnapshotFlushesCallingThread) {
  // to_json is documented to flush the calling thread's Span batch, so a
  // snapshot taken right after a burst of spans already includes them.
  const char* name = "test_obs.span_snapshot";
  HistogramProbe probe(name);
  {
    Span span(probe);
  }
  std::string json = Registry::global().to_json();
  if constexpr (kEnabled) {
    EXPECT_EQ(Registry::global().histogram(name).count(), 1u);
    EXPECT_NE(json.find("test_obs.span_snapshot"), std::string::npos);
  }
}

TEST(Probes, FlushWithNothingPendingIsSafe) {
  flush_this_thread();
  flush_this_thread();
}

}  // namespace
}  // namespace tre::obs
