// The backend-generic threshold beacon pipeline, end to end: joint-
// Feldman DKG (happy path, justified complaints, disqualification,
// abort), RLC batch verification with exact Byzantine attribution,
// typed-error combination, the golden property that a t-of-n aggregate
// is BYTE-identical to the update a single server holding s would have
// issued, quorum collection over a hostile simnet, beacon-node mode on
// the time server, the threshold wire codecs, and the tlock-style round
// addressing. Everything generic runs on BOTH backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bls12/tre381.h"
#include "client/fetcher.h"
#include "client/simnet_source.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "threshold/dkg.h"
#include "threshold/threshold.h"
#include "timeserver/round.h"
#include "timeserver/timeserver.h"

namespace tre::threshold {
namespace {

constexpr const char* kTag = "2030-01-01T00:00:00Z";

template <class B>
struct Glue;

template <>
struct Glue<core::Tre512Backend> {
  static std::shared_ptr<const params::GdhParams> params() {
    return params::load("tre-toy-96");
  }
};

template <>
struct Glue<bls12::Bls381Backend> {
  static std::shared_ptr<const bls12::Bls12Ctx> params() {
    return bls12::Bls12Ctx::get();
  }
};

template <class B>
class ThresholdBeaconTest : public ::testing::Test {
 protected:
  ThresholdBeaconTest()
      : params_(Glue<B>::params()),
        tscheme_(params_),
        rng_(to_bytes("beacon-tests")) {}

  std::vector<BasicPartialUpdate<B>> partials_from(
      const BasicThresholdKey<B>&,
      const std::vector<BasicServerShare<B>>& shares,
      std::initializer_list<size_t> indices, std::string_view tag = kTag) {
    std::vector<BasicPartialUpdate<B>> out;
    for (size_t i : indices) {
      out.push_back(tscheme_.issue_partial(shares[i - 1], tag));
    }
    return out;
  }

  std::shared_ptr<const typename B::Params> params_;
  BasicThresholdScheme<B> tscheme_;
  hashing::HmacDrbg rng_;
};

using Backends = ::testing::Types<core::Tre512Backend, bls12::Bls381Backend>;
TYPED_TEST_SUITE(ThresholdBeaconTest, Backends);

// --- DKG ---------------------------------------------------------------------

TYPED_TEST(ThresholdBeaconTest, DkgProducesWorkingBeacon) {
  using B = TypeParam;
  auto res = run_dkg<B>(this->params_, ThresholdConfig{5, 3}, this->rng_);
  ASSERT_TRUE(res.ok());
  const DkgResult<B>& dkg = *res;

  // No faults: every dealer qualifies, nobody is convicted.
  EXPECT_EQ(dkg.qualified, (std::vector<size_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(dkg.complaints.empty());
  ASSERT_EQ(dkg.shares.size(), 5u);

  // Each node's share matches its public commitment: partials verify.
  for (const BasicServerShare<B>& share : dkg.shares) {
    BasicPartialUpdate<B> pu = this->tscheme_.issue_partial(share, kTag);
    EXPECT_TRUE(this->tscheme_.verify_partial(dkg.key, pu)) << share.index;
  }

  // Any quorum combines into an update the GROUP key accepts, and all
  // quorums agree on the same point.
  auto q1 = this->partials_from(dkg.key, dkg.shares, {1, 2, 3});
  auto q2 = this->partials_from(dkg.key, dkg.shares, {5, 2, 4});
  core::BasicKeyUpdate<B> u1 = this->tscheme_.combine(dkg.key, q1);
  core::BasicKeyUpdate<B> u2 = this->tscheme_.combine(dkg.key, q2);
  EXPECT_TRUE(this->tscheme_.scheme().verify_update(dkg.key.group, u1));
  EXPECT_TRUE(B::gu_eq(u1.sig, u2.sig));
}

// The load-bearing interop property: the aggregate of ANY k partials is
// byte-identical to the update a single server holding the recovered
// master secret would have issued, so every consumer of ordinary updates
// (encryption, archives, non-threshold-aware fetchers) works unchanged.
TYPED_TEST(ThresholdBeaconTest, AggregateBitIdenticalToSingleServer) {
  using B = TypeParam;
  auto res = run_dkg<B>(this->params_, ThresholdConfig{5, 3}, this->rng_);
  ASSERT_TRUE(res.ok());
  const DkgResult<B>& dkg = *res;

  core::BasicServerKeyPair<B> single{
      this->tscheme_.recover_secret(dkg.key, dkg.shares), dkg.key.group};
  core::BasicKeyUpdate<B> want =
      this->tscheme_.scheme().issue_update(single, kTag);

  for (auto quorum : {std::initializer_list<size_t>{1, 2, 3},
                      std::initializer_list<size_t>{2, 4, 5},
                      std::initializer_list<size_t>{5, 3, 1}}) {
    auto partials = this->partials_from(dkg.key, dkg.shares, quorum);
    core::BasicKeyUpdate<B> got = this->tscheme_.combine(dkg.key, partials);
    EXPECT_EQ(got.to_bytes(), want.to_bytes());
  }
}

// Dealer setup and DKG emit interchangeable types: a dealer-set-up
// beacon passes the exact same pipeline.
TYPED_TEST(ThresholdBeaconTest, DealerSetupAggregateBitIdentical) {
  using B = TypeParam;
  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{4, 2}, this->rng_);
  core::BasicServerKeyPair<B> single{
      this->tscheme_.recover_secret(key, shares), key.group};
  core::BasicKeyUpdate<B> want =
      this->tscheme_.scheme().issue_update(single, kTag);
  auto partials = this->partials_from(key, shares, {4, 1});
  EXPECT_EQ(this->tscheme_.combine(key, partials).to_bytes(), want.to_bytes());
}

// A deal corrupted in transit draws a complaint, but the dealer's honest
// public justification clears it: nobody is disqualified and the cleared
// deal is adopted by the accuser.
TYPED_TEST(ThresholdBeaconTest, DkgTransitCorruptionIsJustifiedAway) {
  using B = TypeParam;
  size_t tampered_sends = 0;
  DkgTamper transit_only = [&](size_t dealer, size_t recipient,
                               bool justification, core::Scalar& value) {
    if (dealer == 2 && recipient == 4 && !justification) {
      ++tampered_sends;
      value = bigint::add(value, core::Scalar::from_u64(1));
    }
  };
  auto res =
      run_dkg<B>(this->params_, ThresholdConfig{5, 3}, this->rng_, transit_only);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(tampered_sends, 1u);
  EXPECT_EQ(res->qualified, (std::vector<size_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(res->complaints.empty());

  // The run still yields a coherent beacon including the accused dealer.
  auto partials = this->partials_from(res->key, res->shares, {2, 4, 5});
  EXPECT_TRUE(this->tscheme_.scheme().verify_update(
      res->key.group, this->tscheme_.combine(res->key, partials)));
}

// A Byzantine dealer corrupts the justification too: it is disqualified,
// the complaint is upheld and attributed, and the surviving dealers
// still produce a working beacon.
TYPED_TEST(ThresholdBeaconTest, DkgByzantineDealerDisqualified) {
  using B = TypeParam;
  DkgTamper byzantine = [](size_t dealer, size_t recipient, bool,
                           core::Scalar& value) {
    if (dealer == 3 && recipient == 1) {
      value = bigint::add(value, core::Scalar::from_u64(7));
    }
  };
  auto res =
      run_dkg<B>(this->params_, ThresholdConfig{5, 3}, this->rng_, byzantine);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->qualified, (std::vector<size_t>{1, 2, 4, 5}));
  ASSERT_EQ(res->complaints.size(), 1u);
  EXPECT_EQ(res->complaints[0].dealer, 3u);
  EXPECT_EQ(res->complaints[0].accuser, 1u);

  auto partials = this->partials_from(res->key, res->shares, {1, 3, 5});
  core::BasicKeyUpdate<B> update = this->tscheme_.combine(res->key, partials);
  EXPECT_TRUE(this->tscheme_.scheme().verify_update(res->key.group, update));
}

// Fewer qualified dealers than the reconstruction threshold aborts with
// the typed complaint error — the run cannot guarantee an unbiased s.
TYPED_TEST(ThresholdBeaconTest, DkgAbortsWhenQualifiedBelowThreshold) {
  using B = TypeParam;
  DkgTamper kill_dealer_1 = [](size_t dealer, size_t recipient, bool,
                               core::Scalar& value) {
    if (dealer == 1 && recipient != 1) {
      value = bigint::add(value, core::Scalar::from_u64(1));
    }
  };
  auto res = run_dkg<B>(this->params_, ThresholdConfig{3, 3}, this->rng_,
                        kill_dealer_1);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error(), Errc::kDkgComplaint);
}

// --- batch verification and typed-error combination --------------------------

TYPED_TEST(ThresholdBeaconTest, BatchVerifyAttributesExactGuiltySet) {
  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{8, 5}, this->rng_);
  auto partials =
      this->partials_from(key, shares, {1, 2, 3, 4, 5, 6, 7, 8});

  // Forge position 1 (wrong-tag signature relabelled), 4 (index claims a
  // different node's commitment), 6 (stale signature for another tag).
  partials[1].sig = this->tscheme_.issue_partial(shares[1], "other-tag").sig;
  partials[4].index = 3;
  partials[6].sig = this->tscheme_.issue_partial(shares[6], "stale").sig;

  std::vector<size_t> bad =
      this->tscheme_.verify_partials_batch(key, partials, this->rng_);
  EXPECT_EQ(bad, (std::vector<size_t>{1, 4, 6}));
}

TYPED_TEST(ThresholdBeaconTest, TryCombineDropsForgeriesOrFailsTyped) {
  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{5, 3}, this->rng_);

  // 4 partials, 1 forged: the forgery is attributed and dropped, the
  // remaining 3 still clear the threshold.
  auto partials = this->partials_from(key, shares, {1, 2, 3, 4});
  partials[2].sig = this->tscheme_.issue_partial(shares[2], "forged").sig;
  std::vector<size_t> bad;
  auto ok = this->tscheme_.try_combine(key, partials, this->rng_, &bad);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(bad, (std::vector<size_t>{2}));
  EXPECT_TRUE(this->tscheme_.scheme().verify_update(key.group, *ok));

  // 3 partials, 1 forged: only 2 survive — typed insufficiency, and the
  // error is data, not an exception.
  auto thin = this->partials_from(key, shares, {1, 2, 3});
  thin[0].sig = this->tscheme_.issue_partial(shares[0], "forged").sig;
  auto err = this->tscheme_.try_combine(key, thin, this->rng_);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errc::kInsufficientPartials);
}

// --- wire codecs -------------------------------------------------------------

TYPED_TEST(ThresholdBeaconTest, WireCodecsRoundTrip) {
  using B = TypeParam;
  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{4, 2}, this->rng_);
  const typename B::Params& p = *this->params_;

  Bytes kw = key.to_bytes();
  BasicThresholdKey<B> key2 = BasicThresholdKey<B>::from_bytes(p, kw);
  EXPECT_EQ(key2.to_bytes(), kw);
  EXPECT_EQ(key2.config.n, 4u);
  EXPECT_EQ(key2.config.k, 2u);

  Bytes sw = shares[2].to_bytes(p);
  BasicServerShare<B> share2 = BasicServerShare<B>::from_bytes(p, sw);
  EXPECT_EQ(share2.index, 3u);
  EXPECT_EQ(share2.to_bytes(p), sw);
  // The reparsed share still issues partials the key accepts.
  EXPECT_TRUE(this->tscheme_.verify_partial(
      key2, this->tscheme_.issue_partial(share2, kTag)));

  BasicPartialUpdate<B> pu = this->tscheme_.issue_partial(shares[0], kTag);
  Bytes pw = pu.to_bytes();
  EXPECT_EQ(BasicPartialUpdate<B>::from_bytes(p, pw), pu);

  // Truncation and trailing garbage are rejected at the parse boundary.
  for (Bytes* wire : {&kw, &sw, &pw}) {
    Bytes trunc(wire->begin(), wire->end() - 1);
    Bytes trail = *wire;
    trail.push_back(0);
    if (wire == &kw) {
      EXPECT_THROW(BasicThresholdKey<B>::from_bytes(p, trunc), Error);
      EXPECT_THROW(BasicThresholdKey<B>::from_bytes(p, trail), Error);
    } else if (wire == &sw) {
      EXPECT_THROW(BasicServerShare<B>::from_bytes(p, trunc), Error);
      EXPECT_THROW(BasicServerShare<B>::from_bytes(p, trail), Error);
    } else {
      EXPECT_THROW(BasicPartialUpdate<B>::from_bytes(p, trunc), Error);
      EXPECT_THROW(BasicPartialUpdate<B>::from_bytes(p, trail), Error);
      EXPECT_FALSE(BasicPartialUpdate<B>::try_from_bytes(p, trunc).has_value());
      EXPECT_FALSE(BasicPartialUpdate<B>::try_from_bytes(p, trail).has_value());
    }
  }
}

// --- quorum collection over a hostile simnet ---------------------------------

// n = 6 beacon nodes, k = 3; one relabelling forger, one crashed-silent
// node, one garbage server. The fetcher must reach quorum from the
// honest remainder, accept ZERO forged partials, convict EXACTLY the
// forger, and hand back an aggregate byte-identical to the
// single-server update.
TYPED_TEST(ThresholdBeaconTest, FetchThresholdSurvivesHostileQuorum) {
  using B = TypeParam;
  server::Timeline timeline(0);
  simnet::Network net(timeline, to_bytes("beacon-net"));
  simnet::FaultPlan plan(to_bytes("beacon-plan"));
  net.set_fault_plan(&plan);

  simnet::BasicMirroredArchive<B> archive(this->params_, net, timeline, 6,
                                          simnet::LinkSpec{.base_delay = 1});
  simnet::NodeId rx = net.add_node("rx");

  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{6, 3}, this->rng_);
  for (size_t i = 0; i < 6; ++i) {
    archive.publish_partial(i, this->tscheme_.issue_partial(shares[i], kTag));
  }
  // The relabeller needs a second tag in store to serve under kTag.
  archive.publish_partial(0, this->tscheme_.issue_partial(shares[0], "decoy"));

  plan.set_byzantine(archive.mirror_node(0), simnet::ByzantineMode::kRelabel);
  plan.set_byzantine(archive.mirror_node(2), simnet::ByzantineMode::kGarbage);
  plan.crash_node(archive.mirror_node(1), 0, 1000);

  client::BasicSimnetSource<B> source(archive, rx,
                                      simnet::LinkSpec{.base_delay = 1});
  core::BasicTreScheme<B> scheme(this->params_);
  client::BasicUpdateFetcher<B> fetcher(scheme, key.as_server_public_key(),
                                        source, timeline, {0, 1, 2, 3, 4, 5},
                                        to_bytes("beacon-jitter"));

  auto res = fetcher.fetch_threshold(this->tscheme_, key, kTag);
  ASSERT_TRUE(res.ok());
  const client::BasicThresholdFetchResult<B>& got = *res;

  EXPECT_EQ(got.partials_used, 3u);
  EXPECT_EQ(got.slots_polled, 6u);
  EXPECT_EQ(got.silent, 1u);          // the crashed node
  EXPECT_EQ(got.rejected_parse, 1u);  // garbage fails the parse boundary
  EXPECT_EQ(got.rejected_sig, 1u);    // the relabelled forgery
  EXPECT_EQ(got.byzantine_nodes, (std::vector<size_t>{1}));  // share index

  // Zero forged accepts: the aggregate IS the single-server update.
  core::BasicServerKeyPair<B> single{this->tscheme_.recover_secret(key, shares),
                                     key.group};
  EXPECT_EQ(got.update.to_bytes(),
            scheme.issue_update(single, kTag).to_bytes());

  // The forger was demoted, honest quorum members promoted.
  EXPECT_LT(fetcher.health(0), 0);
  EXPECT_GT(fetcher.health(3), 0);
}

// Too many failures for quorum: typed insufficiency, never a bogus update.
TYPED_TEST(ThresholdBeaconTest, FetchThresholdInsufficientIsTyped) {
  using B = TypeParam;
  server::Timeline timeline(0);
  simnet::Network net(timeline, to_bytes("beacon-net-2"));
  simnet::FaultPlan plan(to_bytes("beacon-plan-2"));
  net.set_fault_plan(&plan);

  simnet::BasicMirroredArchive<B> archive(this->params_, net, timeline, 4,
                                          simnet::LinkSpec{.base_delay = 1});
  simnet::NodeId rx = net.add_node("rx");

  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{4, 3}, this->rng_);
  for (size_t i = 0; i < 4; ++i) {
    archive.publish_partial(i, this->tscheme_.issue_partial(shares[i], kTag));
    if (i < 2) {
      plan.set_byzantine(archive.mirror_node(i), simnet::ByzantineMode::kDrop);
    }
  }

  client::BasicSimnetSource<B> source(archive, rx,
                                      simnet::LinkSpec{.base_delay = 1});
  core::BasicTreScheme<B> scheme(this->params_);
  client::BasicUpdateFetcher<B> fetcher(scheme, key.as_server_public_key(),
                                        source, timeline, {0, 1, 2, 3},
                                        to_bytes("beacon-jitter"));

  auto res = fetcher.fetch_threshold(this->tscheme_, key, kTag);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error(), Errc::kInsufficientPartials);
}

// --- beacon-node mode on the time server -------------------------------------

TYPED_TEST(ThresholdBeaconTest, TimeServerBeaconMode) {
  using B = TypeParam;
  server::Timeline timeline(1000000);
  server::BasicTimeServer<B> ts(this->params_, timeline,
                                server::Granularity::kSecond, this->rng_);
  EXPECT_FALSE(ts.beacon_enabled());

  auto [key, shares] = this->tscheme_.setup(ThresholdConfig{3, 2}, this->rng_);
  ts.enable_beacon(key, shares[1]);
  ASSERT_TRUE(ts.beacon_enabled());
  EXPECT_EQ(ts.beacon_key().to_bytes(), key.to_bytes());

  // Trust assumption 2 binds partials exactly as it binds full updates.
  auto future = ts.try_issue_partial_for(server::TimeSpec::from_unix(
      timeline.now() + 60, server::Granularity::kSecond));
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.error(), Errc::kFutureInstant);

  auto now_spec =
      server::TimeSpec::from_unix(timeline.now(), server::Granularity::kSecond);
  auto partial = ts.try_issue_partial_for(now_spec);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->index, 2u);
  EXPECT_TRUE(this->tscheme_.verify_partial(key, *partial));
  EXPECT_EQ(ts.stats().partials_issued, 1u);

  // Two beacon nodes reach quorum; the aggregate passes the ordinary
  // update check the server's own clients run.
  server::BasicTimeServer<B> peer(this->params_, timeline,
                                  server::Granularity::kSecond, this->rng_);
  peer.enable_beacon(key, shares[0]);
  std::vector<BasicPartialUpdate<B>> quorum = {*partial,
                                               peer.issue_partial_for(now_spec)};
  core::BasicKeyUpdate<B> update = this->tscheme_.combine(key, quorum);
  EXPECT_TRUE(this->tscheme_.scheme().verify_update(key.group, update));
}

// --- round addressing (backend-free) -----------------------------------------

TEST(RoundAddressing, TagRoundTripAndRejects) {
  EXPECT_EQ(server::round_tag(1), "round:1");
  EXPECT_EQ(server::round_tag(123456789), "round:123456789");
  EXPECT_EQ(server::parse_round_tag("round:1"), std::optional<std::uint64_t>(1));
  EXPECT_EQ(server::parse_round_tag("round:0"), std::optional<std::uint64_t>(0));
  for (const char* bad :
       {"round:", "round:01", "round:-1", "round:1x", "Round:1", "r:1",
        "round:18446744073709551616" /* 2^64 */, "2030-01-01"}) {
    EXPECT_FALSE(server::parse_round_tag(bad).has_value()) << bad;
  }
  // Canonical both ways across the range.
  for (std::uint64_t r : {std::uint64_t{0}, std::uint64_t{7},
                          std::uint64_t{0xffffffffffffffffULL}}) {
    EXPECT_EQ(server::parse_round_tag(server::round_tag(r)),
              std::optional<std::uint64_t>(r));
  }
}

TEST(RoundAddressing, ChainArithmeticMatchesDrand) {
  server::BeaconChain chain{.genesis_seconds = 1000, .period_seconds = 30};
  EXPECT_EQ(server::round_for(chain, 999), 0u);   // pre-genesis: no round
  EXPECT_EQ(server::round_for(chain, 1000), 1u);  // round 1 AT genesis
  EXPECT_EQ(server::round_for(chain, 1029), 1u);
  EXPECT_EQ(server::round_for(chain, 1030), 2u);
  for (std::uint64_t r : {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{97}}) {
    EXPECT_EQ(server::round_for(chain, server::round_time(chain, r)), r);
  }
}

TEST(RoundAddressing, RoundMessageIsSha256OfBe64) {
  Bytes m1 = server::round_message(1);
  ASSERT_EQ(m1.size(), 32u);
  std::uint8_t be1[8] = {0, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_EQ(m1, hashing::sha256(ByteSpan(be1, 8)));
  EXPECT_NE(server::round_message(2), m1);
}

}  // namespace
}  // namespace tre::threshold
