// Hierarchical timed release (§6 future work): time-tree paths, the
// non-escrowed HIBE-TRE, archive compaction and derivation catch-up.
#include "timeserver/hierarchical.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::server {
namespace {

class HierarchicalTest : public ::testing::Test {
 protected:
  HierarchicalTest()
      : params_(params::load("tre-toy-96")),
        timeline_(TimeSpec::parse("2005-06-06T09:00Z")->unix_seconds()),
        rng_(to_bytes("hier-tests")),
        server_(params_, timeline_, rng_),
        htre_(params_),
        scheme_(params_) {
    // Receiver key bound to the HIBE root (P0, Q0).
    core::ServerPublicKey bind{server_.public_key().p0, server_.public_key().q0};
    user_ = scheme_.user_keygen(bind, rng_);
  }

  std::shared_ptr<const params::GdhParams> params_;
  Timeline timeline_;
  hashing::HmacDrbg rng_;
  HierarchicalTimeServer server_;
  HierarchicalTre htre_;
  core::TreScheme scheme_;
  core::UserKeyPair user_;
};

TEST(TimePath, DepthsPerGranularity) {
  auto minute = *TimeSpec::parse("2005-06-06T09:07Z");
  auto path = time_path(minute);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "2005-06-06");
  EXPECT_EQ(path[1], "2005-06-06T09Z");
  EXPECT_EQ(path[2], "2005-06-06T09:07Z");

  EXPECT_EQ(time_path(*TimeSpec::parse("2005-06-06T09Z")).size(), 2u);
  EXPECT_EQ(time_path(*TimeSpec::parse("2005-06-06")).size(), 1u);
  EXPECT_THROW(time_path(*TimeSpec::parse("2005-06-06T09:07:01Z")), Error);
}

TEST_F(HierarchicalTest, LeafKeyDecryptsAtRelease) {
  auto release = *TimeSpec::parse("2005-06-06T09:05Z");
  Bytes msg = to_bytes("hierarchical release");
  auto ct = htre_.encrypt(msg, user_.pub, server_.public_key(), release, rng_);
  timeline_.advance_to(release.unix_seconds());
  hibe::NodeKey leaf = server_.key_for(release);
  EXPECT_EQ(htre_.decrypt(ct, user_.a, leaf), msg);
}

TEST_F(HierarchicalTest, ServerRefusesEarlyKeys) {
  auto release = *TimeSpec::parse("2005-06-06T09:05Z");
  EXPECT_THROW(server_.key_for(release), Error);  // minute not arrived
  timeline_.advance_to(release.unix_seconds());
  // The containing hour has NOT completed: its internal key stays sealed.
  EXPECT_THROW(server_.key_for(*TimeSpec::parse("2005-06-06T09Z")), Error);
  EXPECT_THROW(server_.key_for(*TimeSpec::parse("2005-06-06")), Error);
}

TEST_F(HierarchicalTest, WrongReceiverAndEscrowResistance) {
  auto release = *TimeSpec::parse("2005-06-06T09:05Z");
  Bytes msg = to_bytes("bound to the receiver");
  auto ct = htre_.encrypt(msg, user_.pub, server_.public_key(), release, rng_);
  timeline_.advance_to(release.unix_seconds());
  hibe::NodeKey leaf = server_.key_for(release);
  // Another user's secret fails.
  core::ServerPublicKey bind{server_.public_key().p0, server_.public_key().q0};
  core::UserKeyPair eve = scheme_.user_keygen(bind, rng_);
  EXPECT_NE(htre_.decrypt(ct, eve.a, leaf), msg);
  // The published key alone (a = 1, i.e. the server/public view) fails:
  // session keys are bound to the receiver secret.
  EXPECT_NE(htre_.decrypt(ct, core::Scalar::from_u64(1), leaf), msg);
}

TEST_F(HierarchicalTest, CompletedHourKeyDerivesAllItsMinutes) {
  auto release = *TimeSpec::parse("2005-06-06T09:05Z");
  Bytes msg = to_bytes("derived decryption");
  auto ct = htre_.encrypt(msg, user_.pub, server_.public_key(), release, rng_);
  // Receiver missed everything; the hour completes at 10:00.
  timeline_.advance_to(TimeSpec::parse("2005-06-06T10Z")->unix_seconds());
  hibe::NodeKey hour = server_.key_for(*TimeSpec::parse("2005-06-06T09Z"));
  EXPECT_TRUE(hour.can_derive);
  hibe::NodeKey leaf = htre_.hibe().derive_child(server_.public_key().p0, hour,
                                                 "2005-06-06T09:05Z",
                                                 core::Scalar::from_u64(1));
  EXPECT_EQ(htre_.decrypt(ct, user_.a, leaf), msg);
}

TEST_F(HierarchicalTest, TickPublishesAndCompacts) {
  // Run 2h05m: minutes 09:00..11:05 (125+1 leaves), hours 09 and 10
  // complete, so their minutes compact away.
  timeline_.advance_to(TimeSpec::parse("2005-06-06T11:05Z")->unix_seconds());
  server_.tick();
  // Archive: 2 internal hour keys + 6 leaves of the current hour
  // (11:00..11:05). The compacted representation is tiny.
  EXPECT_EQ(server_.archive().entries(), 2u + 6u);
  EXPECT_EQ(server_.stats().leaves_published, 126u);
  EXPECT_EQ(server_.stats().internal_published, 2u);

  // Every minute of hour 09 is still recoverable via derivation.
  auto got = server_.archive().leaf_for(htre_.hibe(), server_.public_key().p0,
                                        *TimeSpec::parse("2005-06-06T09:33Z"));
  ASSERT_TRUE(got.has_value());
  // And a current-hour minute is a direct hit.
  auto direct = server_.archive().leaf_for(htre_.hibe(), server_.public_key().p0,
                                           *TimeSpec::parse("2005-06-06T11:03Z"));
  ASSERT_TRUE(direct.has_value());
  // Future minutes are absent.
  EXPECT_FALSE(server_.archive()
                   .leaf_for(htre_.hibe(), server_.public_key().p0,
                             *TimeSpec::parse("2005-06-06T11:30Z"))
                   .has_value());
}

TEST_F(HierarchicalTest, ArchiveDerivedLeafDecrypts) {
  auto release = *TimeSpec::parse("2005-06-06T09:41Z");
  Bytes msg = to_bytes("catch-up via archive derivation");
  auto ct = htre_.encrypt(msg, user_.pub, server_.public_key(), release, rng_);
  timeline_.advance_to(TimeSpec::parse("2005-06-06T10:01Z")->unix_seconds());
  server_.tick();
  auto leaf = server_.archive().leaf_for(htre_.hibe(), server_.public_key().p0, release);
  ASSERT_TRUE(leaf.has_value());
  EXPECT_EQ(htre_.decrypt(ct, user_.a, *leaf), msg);
}

TEST_F(HierarchicalTest, DayCompactionToOneKey) {
  // A full day plus a bit: the completed day compacts to ONE archive
  // entry; all 1440 of its minutes stay derivable.
  timeline_.advance_to(TimeSpec::parse("2005-06-07T00:02Z")->unix_seconds());
  server_.tick();
  // Entries: 1 day key (06-06 partial day from 09:00 — still compacted
  // as soon as the day boundary passed) + leaves of the current hour.
  auto leaf = server_.archive().leaf_for(htre_.hibe(), server_.public_key().p0,
                                         *TimeSpec::parse("2005-06-06T23:59Z"));
  ASSERT_TRUE(leaf.has_value());
  auto early = server_.archive().leaf_for(htre_.hibe(), server_.public_key().p0,
                                          *TimeSpec::parse("2005-06-06T14:30Z"));
  ASSERT_TRUE(early.has_value());
  EXPECT_LE(server_.archive().entries(), 4u);  // day key + 00:00..00:02 leaves
}

}  // namespace
}  // namespace tre::server
