// The persistent-pool parallel_for: index coverage, template-callable
// dispatch (no std::function), serial determinism under max_threads=1,
// exception propagation, nested calls, and pool stability across uses.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.h"

namespace tre {
namespace {

TEST(ParallelWorkers, Bounds) {
  EXPECT_EQ(parallel_workers(1, 0), 1u);   // never more workers than items
  EXPECT_EQ(parallel_workers(100, 1), 1u);
  EXPECT_EQ(parallel_workers(3, 8), 3u);
  EXPECT_GE(parallel_workers(100, 0), 1u);
  EXPECT_LE(parallel_workers(100, 4), 4u);
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  parallel_for(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool called = false;
  parallel_for(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialWhenMaxThreadsIsOne) {
  // max_threads=1 must run on the calling thread, in order — the
  // determinism contract the DRBG-seeded batch tests rely on.
  std::vector<size_t> order;
  parallel_for(64, [&](size_t i) { order.push_back(i); }, /*max_threads=*/1);
  ASSERT_EQ(order.size(), 64u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

// parallel_for takes the callable as a template parameter: any callable
// shape works without std::function boxing.
struct SquareInto {
  std::vector<std::uint64_t>* out;
  void operator()(size_t i) const { (*out)[i] = static_cast<std::uint64_t>(i) * i; }
};

TEST(ParallelFor, AcceptsFunctionObjectsAndMutableLambdas) {
  constexpr size_t kN = 513;  // deliberately not a multiple of the chunk size
  std::vector<std::uint64_t> squares(kN, 0);
  parallel_for(kN, SquareInto{&squares});
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(squares[i], i * i);

  std::atomic<std::uint64_t> sum{0};
  std::uint64_t unused_state = 0;  // forces a mutable, stateful closure
  parallel_for(
      kN,
      [&sum, unused_state](size_t i) mutable {
        unused_state = i;
        sum.fetch_add(i, std::memory_order_relaxed);
      });
  EXPECT_EQ(sum.load(), std::uint64_t{kN} * (kN - 1) / 2);
}

TEST(ParallelFor, FirstExceptionPropagatesAndLoopDrains) {
  std::atomic<std::uint32_t> ran{0};
  try {
    parallel_for(1'000, [&](size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 137) throw std::runtime_error("index 137 failed");
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 137 failed");
  }
  // The failed call must not poison the pool: the next loop runs fine.
  std::atomic<std::uint32_t> after{0};
  parallel_for(256, [&](size_t) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 256u);
  EXPECT_LE(ran.load(), 1'000u);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // The caller always participates in its own loop, so an inner
  // parallel_for issued from a worker cannot starve: worst case it runs
  // serially on that worker.
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<std::uint32_t>> hits(kOuter * kInner);
  parallel_for(kOuter, [&](size_t o) {
    parallel_for(kInner, [&, o](size_t i) { hits[o * kInner + i].fetch_add(1); });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1u);
}

TEST(ParallelPool, ThreadCountIsStableAcrossUses) {
  parallel_for(128, [](size_t) {});  // force pool creation
  const unsigned first = pool_thread_count();
  for (int round = 0; round < 5; ++round) {
    parallel_for(128, [](size_t) {});
    EXPECT_EQ(pool_thread_count(), first) << "pool respawned on round " << round;
  }
}

}  // namespace
}  // namespace tre
