// Known-answer and bit-identity vectors for the BLS12-381 backend.
//
// Every hex constant below was captured from the tree BEFORE the
// projective/cyclotomic pairing engine landed (the affine-over-F_p12
// Miller loop with the generic hard-part power), so these tests pin the
// new engine to the old engine's exact canonical outputs: pairing
// values, generators, hash-to-curve points, and the full scheme
// transcript (keys, update, all four ciphertext modes) under the
// "golden-tre-bls12-381" DRBG seed. Any deviation in the Miller loop,
// final exponentiation, scalar-multiplication results, serialization,
// or randomness draw order shows up here as a hex diff.
#include <gtest/gtest.h>

#include <string>

#include "bls12/tre381.h"
#include "hashing/drbg.h"

namespace tre::bls12 {
namespace {

// --- raw pairing KATs (pre-rewrite engine) ----------------------------------

constexpr const char* kG1Gen =
    "02161c3159840c9d682dfff662712bdacc8a91fc4ced4f1f8f7f0812be28b616f5a91b29"
    "cceeda50fd4ff6b17bde5777a2";
constexpr const char* kG2Gen =
    "030dcfc24dc1ee04b172045bf173a3e7f61bfeea0724777084734e60c4d2d29c5b8195ef"
    "3fd4e6b1dcbed9333d00e3a743077424144f96b1350f4011eb297905809d85e0e866a47e"
    "aaa51adc35136780399d25dcd6f54642c90bfa47174987ef6c";
constexpr const char* kPairGen =
    "08e28521e83dadbc2290b069480262d1b3f720991affad88035baaf5a6da415a31f5fd10"
    "03d837a537cbe84ebc439f9216835822ded4cd12d9d9e2cb3f2da9df7cd60da818d9bb74"
    "3466cb080d3a5b7754dfb703c207ac13eae2f0502b49fef117f068971778d50f21d911de"
    "ec3c53f45476d5605e1f30e68115c94006827b506d2e88d73a7e6d3956634af811f84f30"
    "187a32a8ca7aa3395ef47191d2c8395b9388f205a949d68b0cb7b9aff79bb3d43974022c"
    "a70785acef27d6f1858a379d16eb4ad1f8c2dcc615ec17452ee24693c8f8f39b4e769ae0"
    "2bd42345e91184ced6df4a30c3bb578f7536afc246ee50f2110c51fc9a4d598a612967f5"
    "6da24b5a8c90a1ba08ed00aa6229f60ec1a6418c7d961c05ecc95fa98e03d9541a2a9a52"
    "0dcc999bb9fcb80182cacc00c26f7ce8333b30f6eb7814a7ead4b8e63ebc43925b62dcc9"
    "01f95f8c2aa7aa070d6a116602eb87f99c9e8fadfc27670253e8c4417e29876a3b5f324a"
    "029ad825774af9e1266cae7971ca4d90a0088e76fd392c16111fa59e137e27f2fd0455c5"
    "b086cfff3550ed811dafce5ba234a57bd74221d871265d9c90cf4b948c7a6545edb5b9c4"
    "16c3e664d9e84f0ef897757398d0b669af41bddb9ba6f25187d225d16237b8ce1861dcde"
    "97c755142eee6079aa189ae911a1ee76dc6ae58415b83ba6d401c35581a1762cb81b0f7f"
    "315a49a8f88491d7d9280de7c8604513a5d4abae80c0375503dd8ace77e0da4d1b37f4be"
    "acdcea778c9133a763dae32e43f375dde8073760fbc373feff53576e38731c032b3878"
    "ac";
constexpr const char* kG1X5 =
    "031760968a8d3d14c29fcddfd9baa748ead4deade088c0e3f44fb8206f756f6c980dd7d5"
    "732cbf4833c60e525e3358c160";
constexpr const char* kG2X7 =
    "030d7648a40c5e1bd112cf9e73d027e37dab4964cff7eedd06c992826a281fc2ae7624f7"
    "6a25aab6a27ec8b4da4d6a418e13a53ebfb3cd3b589bbb61a8af13d345b16722a537b51d"
    "70f0a5ea1f12ee1388230ea412ac90754ec05dfcf8901a8f41";
constexpr const char* kPair57 =
    "08747895f1f4a8f9fa909abdc8ffaaf54c30b17024b72229fe82c406904c9ca5224a10e2"
    "57227ea8bf3b88b9ae12aa500efcf127c0eea85ddee3ff448029a25c8263ec6439a05a69"
    "19a569f49c126000ed93ccad9294e687ed98a429b17777e319f0f2f4aa2c709d83f60786"
    "c01cad3f64d80f307a1fd68e3fd72afa0c908dd6e5015ea6ccaec3101f51286eb7cc2f04"
    "02838a4abccf23f449459e8291c29c921af1430779cc7a74580013cba2fbce334e3b3afa"
    "4b2948e8fa1c99be09337ef00c441335df77df564f5eeda6046a53ed80b406493b659f08"
    "8a6ece250fed0df9f3f7102aaf90852770eecfbdb7e4d7c50f69c93c0b975afee5551416"
    "6873b0c9be2b6aa7e5421f30faff85eb3e79ecb01da2c9d9582d6240e11f6410061dd94b"
    "0f68723bbfd5248222773eb7755342f06ebac7213cd490bf801f0574249ee5d8e9f5cd94"
    "b552dd5f391d1ed9aba3c5500afdb24da44b83f9f0bc70a454f0013f78663ca1bde4e759"
    "b6c6f0deab8bff7097096e8459dc4dd67e8a2c83a46b890105f804a2d5a269cad41643a7"
    "8b07b1393117ec43f24319b70ff766f910c0f1067d4772ccb72e491266f05ccd8dec9698"
    "0230b5718893a6c57dbf8d239b432b9f148f14e011f1a19ba9587573fe23c1187956b6a8"
    "02989d60aedcc22c50c273b90d523aed8ec171f4831d622e9693d5008a163b06f1863bce"
    "fd45186e3311b105359df07d02dde1acead2b6dbf284c77b18ecaf67a99ddcd2f052f6a8"
    "f600bc0dd2807862d96e485b83be422053b0864ddea99858be5a4671c0bbc631098eb9"
    "92";
constexpr const char* kH1Vec =
    "0313260ea999b0ccf366968e040183a8b40c78dbab9cddcd37da9e797c5b8e4026520"
    "2d4fdc3a573bb5069ab91bae35baa";
constexpr const char* kPairH1G2 =
    "17aa33822fbf7772ad15c657e49a8510600f3b44221448542f0fcf401007a08f9bbabd2c"
    "146a6dc7946ed132fe114ecb084ad058c344b696b72964103b1cc1e3eff2eeb6581da400"
    "08700c37fbbcbb64b54e5b19631e973c5a3466fc987ee55715e0eb108ef7e636e0e8e254"
    "6dfb9311c0e2ad00c71c343c2fb9af0e2561029cc4d3dfb262bea45e867bd2ba39d14d12"
    "0af793586b79fd74d3dbd74ba7d8b6d17754c84c23d0cb525aafa2d2725b3a4d98227dc2"
    "abd9f7a024d5df4ad80c918319b2e2f3ef8d5fd3257b12e825ff1044c03c91c63210b44d"
    "395238d7a59db75e06946415a301eccd8c342e2b75476ead18a026939fcd2cbaf223f06a"
    "468446ca1695bcabb8d145f83cbd78c05ea29ebb3c3cd6323ecf717e3498293c0ac88b67"
    "14f036cf8147357223aaa1054ecefbd713319560507ec58d2bde63105776a19b7107982f"
    "b227a8ab58f3b7a8e6852872190acb1915c7f34841022c38d4572e7af08022a3e84fa15e"
    "3f8f84a1ef54bbfc0adc205b577c8daa8978226b887b582213bd16007d14cc2bf0d05dc6"
    "6e89ce129006e492cbb9359d5335030384f3d8349d8cf33d713d86de00a863a73c15bf5d"
    "0a60e4383e4e1e8d52a95e343b5abc5e092dd204fce953a1b56043c79985d4fb300f9a98"
    "3a95f14caaf399f1e9e87f6f0625c04aca0980160297e97d8488901348b2ec47c79c723c"
    "f737d4d1ebaf916447cbe443018256cf541f4c40897438a0029a2875d7ee1319dd77c77d"
    "5663d7b1c02088a79f6caa592c92f1219d6a14241b2a17760c1642eda314c9da80f21d"
    "7b";

// --- scheme golden vectors (seed "golden-tre-bls12-381") --------------------

constexpr const char* kServer =
    "021175bc6249cfe7527dfa818ac718b9a0663b43cb7d0be9cb94a83df96041516fc76d1c"
    "3f206548c786fefd12017ca8e40b5afadb6674f57b5b68acf1bf09a8f10651bafb13aed9"
    "5ce43e53cf7ea3e298d2ff3d28511a3ee74cfeacb30c209da9031155c16309d807fb3eca"
    "52e687df31f6c5675de738654cf4bd9197fe8a0d71896ac2342a1a6d34de53fb0e5bc310"
    "475600f87df4b7475d735181d0707e5c58c8997d7cc2cc1445866a78196a36218b9f3054"
    "99e6a497241ae4188373031d4d76";
constexpr const char* kUser =
    "020f2f6d44fc2adae42c75c1671475bb393b1337830b986fe93377b5bf3b40fa27dfbb02"
    "d09594393394d60d66d1d3f87e0201556973e052cf91d42d7d837ff2d14d04fec9ede3d8"
    "52a793d6892632e88fc0bf241ad18fe9cd899daf436d24fa4b931244c224f549a104563e"
    "cddf539cb9f6c8995b43cae7a5e44c2b6b1e1875cabe4b5096283022bd1b76170859bbd0"
    "c647";
constexpr const char* kPwUser =
    "030f3ceb319993bee8a579ebb47e0c0036fb946b46fbc4f1effd5cc98b2bb424f9843dd6"
    "ccd31b6adb0414c87354d27095020393f090cf9cc4116ddd497f4432901c03257c681d50"
    "d275dc238b06213af2842335967e957e30414f5189ce3a7c80df11d89124e791ac6675ca"
    "e646d38014ee7102422605c0a731151994a0641efc22792b04e3db53b7dd915dc820194"
    "f0a90";
constexpr const char* kUpdate =
    "0014323033302d30312d30315430303a30303a30305a0201779abc4d804abe454e186b5e"
    "69c7c1981a2d2c8fe7fd5bea317104620c512d075b4f6bc8a03ab63f3806083e8cb28d";
constexpr const char* kBasic =
    "030fc48fc2a79b868960aede578c8728c8d54fa164ada2d3f3647b0d9f1fc3d8497b1663"
    "3adb7c783df013a781129c3e0d14d5a85bc0082f6fd9a38ab7f9a7432c953e16bab53b1f"
    "d6cc4e653a008027daedd387554f137cf6dc3a6cc8e5cb73c0001b1b8da4f9dc6fd3ec45"
    "e299d4eb8103956ed2de6004d01759a3f8a3";
constexpr const char* kFo =
    "02155541f5bd70be6f41ec5491096fd2265d322660d4b9465119848b046357cc6c912621"
    "b97790b2ce1e395a57d30f99c0101f791d348e6ad0230af196b82d9a032534701eae39e4"
    "8064cf2e0b8462d611e7de027c2de9b9aa559b6e656d51242a0020412f850e3c8ee6aece"
    "55ba291545d08f73a4e4dac1ec662de106aba09e4bd1d1001bb15e06c6c51f10c6153277"
    "d96a9112f0a09f157d39db40e31ace00";
constexpr const char* kReact =
    "030fe8fbea12f25305cc82229029977690f6470c5f6d874d4e9b502ebf56122ec3d2b13d"
    "10c805af24150eed0da94567d20a9a453501a24bc7ea9263355d63785d767e302ebf1581"
    "e1ab823a26a2669c125874158d46c29442133e521e8bc1c99d002005cb44ae81c2f9929c"
    "f9d3eb09f825ce73b4e41f74d0ce8da70cb90a1437e605001bf655feb9f7895989e8e796"
    "50ed990dced369245ba7122cc64ea1420020fd891de413e352a3574b2fd97c868197f2ad"
    "0173a4f2d81021d5df15fea1ff14";
constexpr const char* kSealed =
    "030213166a15b457b8aedfef2d5286d9c0904b3adc923f5d8d1318e0bd042f9c341db766"
    "307ba8d4cbe98e8504cbb43b406b08684f8f9cbba34da8117cd6887df8f0e9cb2bb94e88"
    "3a6c491c081b1b2553c3803e06140ad81fff766bd77b0c3f28180020b5ee4620b5c1b3c1"
    "d98c00c248d42182eef7ca4b7fb56796cb9d9744105e2a02001ba8f96339cc89ff535ab2"
    "e51a9f601b940ed9711bbf137dc761e49000206c42d918ea3c0b11f827d1194d4c1ecdd1"
    "b6d85c14d468b7dcaff5cbbec4e1ef";

std::string hex(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * b.size());
  for (std::uint8_t byte : b) {
    out.push_back(digits[byte >> 4]);
    out.push_back(digits[byte & 0xf]);
  }
  return out;
}

class Bls381VectorsTest : public ::testing::Test {
 protected:
  Bls381VectorsTest() : ctx_(Bls12Ctx::get()), rng_(to_bytes("bls381-vectors")) {}
  std::shared_ptr<const Bls12Ctx> ctx_;
  hashing::HmacDrbg rng_;
};

TEST_F(Bls381VectorsTest, GeneratorsAndSubgroups) {
  EXPECT_EQ(hex(ctx_->g1_to_bytes(ctx_->g1_generator())), kG1Gen);
  EXPECT_EQ(hex(ctx_->g2_to_bytes(ctx_->g2_generator())), kG2Gen);
  EXPECT_TRUE(ctx_->g1_in_subgroup(ctx_->g1_generator()));
  EXPECT_TRUE(ctx_->g2_in_subgroup(ctx_->g2_generator()));
  G1Point381 p5 = ctx_->g1_mul(ctx_->g1_generator(), Scalar::from_u64(5));
  G2Point381 q7 = ctx_->g2_mul(ctx_->g2_generator(), Scalar::from_u64(7));
  EXPECT_EQ(hex(ctx_->g1_to_bytes(p5)), kG1X5);
  EXPECT_EQ(hex(ctx_->g2_to_bytes(q7)), kG2X7);
  G1Point381 h = ctx_->hash_to_g1(to_bytes("bls12-381 vector point"));
  EXPECT_EQ(hex(ctx_->g1_to_bytes(h)), kH1Vec);
}

TEST_F(Bls381VectorsTest, PairingKnownAnswers) {
  Gt381 e = ctx_->pair(ctx_->g1_generator(), ctx_->g2_generator());
  EXPECT_EQ(hex(ctx_->gt_to_bytes(e)), kPairGen);

  G1Point381 p5 = ctx_->g1_mul(ctx_->g1_generator(), Scalar::from_u64(5));
  G2Point381 q7 = ctx_->g2_mul(ctx_->g2_generator(), Scalar::from_u64(7));
  Gt381 e57 = ctx_->pair(p5, q7);
  EXPECT_EQ(hex(ctx_->gt_to_bytes(e57)), kPair57);
  // Bilinearity against the pinned value: ê(5G, 7H) = ê(G, H)^35.
  EXPECT_TRUE(ctx_->gt_eq(e57, ctx_->gt_pow(e, Scalar::from_u64(35))));
  EXPECT_TRUE(ctx_->gt_eq(e57, ctx_->gt_pow_unitary(e, Scalar::from_u64(35))));

  G1Point381 h = ctx_->hash_to_g1(to_bytes("bls12-381 vector point"));
  EXPECT_EQ(hex(ctx_->gt_to_bytes(ctx_->pair(h, ctx_->g2_generator()))),
            kPairH1G2);
}

TEST_F(Bls381VectorsTest, CachedPairingMatchesUncached) {
  G1Point381 h = ctx_->hash_to_g1(to_bytes("cached-vs-uncached"));
  G2Point381 q = ctx_->g2_mul(ctx_->g2_generator(), ctx_->random_scalar(rng_));
  Gt381 plain = ctx_->pair(h, q);
  // Twice through the cache: miss then hit, identical values.
  EXPECT_TRUE(ctx_->gt_eq(ctx_->pair_cached(h, q), plain));
  EXPECT_TRUE(ctx_->gt_eq(ctx_->pair_cached(h, q), plain));
}

TEST_F(Bls381VectorsTest, FastEngineMatchesReferenceEngine) {
  // The reference engine is the seed's affine-over-F_p12 Miller loop with
  // the generic hard-exponent power — an implementation sharing nothing
  // with the projective/cyclotomic path beyond the tower primitives.
  for (int i = 0; i < 3; ++i) {
    G1Point381 p = ctx_->g1_mul(ctx_->g1_generator(), ctx_->random_scalar(rng_));
    G2Point381 q = ctx_->g2_mul(ctx_->g2_generator(), ctx_->random_scalar(rng_));
    EXPECT_TRUE(ctx_->gt_eq(ctx_->pair(p, q), ctx_->pair_reference(p, q)));
  }
}

TEST_F(Bls381VectorsTest, PairingsEqualAgreesWithReference) {
  const G1Point381& g = ctx_->g1_generator();
  const G2Point381& h2 = ctx_->g2_generator();
  Scalar s = ctx_->random_scalar(rng_);
  G1Point381 hm = ctx_->hash_to_g1(to_bytes("pe-ref"));
  G1Point381 shm = ctx_->g1_mul(hm, s);
  G2Point381 sh = ctx_->g2_mul(h2, s);
  EXPECT_TRUE(ctx_->pairings_equal(shm, h2, hm, sh));
  EXPECT_TRUE(ctx_->pairings_equal_reference(shm, h2, hm, sh));
  EXPECT_FALSE(ctx_->pairings_equal(shm, h2, hm, h2));
  EXPECT_FALSE(ctx_->pairings_equal_reference(shm, h2, hm, h2));
  (void)g;
}

TEST_F(Bls381VectorsTest, SecretLaddersAndCombMatchPublicLadder) {
  for (int i = 0; i < 3; ++i) {
    Scalar k = ctx_->random_scalar(rng_);
    EXPECT_TRUE(ctx_->g1_eq(ctx_->g1_mul_secret(ctx_->g1_generator(), k),
                            ctx_->g1_mul(ctx_->g1_generator(), k)));
    EXPECT_TRUE(ctx_->g2_eq(ctx_->g2_mul_secret(ctx_->g2_generator(), k),
                            ctx_->g2_mul(ctx_->g2_generator(), k)));
  }
  G2Comb comb(ctx_, ctx_->g2_generator());
  for (std::uint64_t small : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{2}, std::uint64_t{255}}) {
    Scalar k = Scalar::from_u64(small);
    EXPECT_TRUE(ctx_->g2_eq(comb.mul(k), ctx_->g2_mul(ctx_->g2_generator(), k)));
    EXPECT_TRUE(
        ctx_->g2_eq(comb.mul_secret(k), ctx_->g2_mul(ctx_->g2_generator(), k)));
  }
  for (int i = 0; i < 3; ++i) {
    Scalar k = ctx_->random_scalar(rng_);
    G2Point381 want = ctx_->g2_mul(ctx_->g2_generator(), k);
    EXPECT_TRUE(ctx_->g2_eq(comb.mul(k), want));
    EXPECT_TRUE(ctx_->g2_eq(comb.mul_secret(k), want));
  }
}

// Replays exactly the capture program's operation sequence (keygen,
// keygen, password keygen, issue, encrypt, encrypt_fo, encrypt_react,
// seal) so the DRBG stream lines up draw for draw. Tuning must not
// change any byte — the engines are value-identical by construction.
void check_golden_381(core::Tuning tuning) {
  Tre381Scheme scheme = make_tre381(tuning);
  hashing::HmacDrbg rng(to_bytes(std::string("golden-tre-bls12-381")));
  auto server = scheme.server_keygen(rng);
  auto user = scheme.user_keygen(server.pub, rng);
  auto pw = scheme.user_keygen_from_password(server.pub, "hunter2");
  const char* tag = "2030-01-01T00:00:00Z";
  auto upd = scheme.issue_update(server, tag);
  Bytes msg = to_bytes("golden bit-identity message");
  auto ct = scheme.encrypt(msg, user.pub, server.pub, tag, rng);
  auto fo = scheme.encrypt_fo(msg, user.pub, server.pub, tag, rng);
  auto react = scheme.encrypt_react(msg, user.pub, server.pub, tag, rng);
  auto sealed = scheme.seal(core::Mode::kReact, msg, user.pub, server.pub, tag, rng);

  EXPECT_EQ(hex(server.pub.to_bytes()), kServer);
  EXPECT_EQ(hex(user.pub.to_bytes()), kUser);
  EXPECT_EQ(hex(pw.pub.to_bytes()), kPwUser);
  EXPECT_EQ(hex(upd.to_bytes()), kUpdate);
  EXPECT_EQ(hex(ct.to_bytes()), kBasic);
  EXPECT_EQ(hex(fo.to_bytes()), kFo);
  EXPECT_EQ(hex(react.to_bytes()), kReact);
  EXPECT_EQ(hex(sealed.to_bytes()), kSealed);

  // And the golden ciphertexts still decrypt / open.
  EXPECT_EQ(scheme.decrypt(ct, user.a, upd), msg);
  auto fo_out = scheme.decrypt_fo(fo, user.a, upd, server.pub);
  ASSERT_TRUE(fo_out.has_value());
  EXPECT_EQ(*fo_out, msg);
  auto open_out = scheme.open(sealed, user.a, upd, server.pub);
  ASSERT_TRUE(open_out.has_value());
  EXPECT_EQ(*open_out, msg);
}

TEST(Bls381GoldenTest, MatchesPreRewriteBytes) {
  check_golden_381(core::Tuning::fast());
}

TEST(Bls381GoldenTest, MatchesUnderLegacyTuning) {
  check_golden_381(core::Tuning::legacy());
}

TEST(Bls381GoldenTest, MatchesUnderLockedCaches) {
  check_golden_381(core::Tuning::fast_locked());
}

}  // namespace
}  // namespace tre::bls12
