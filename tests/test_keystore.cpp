// Password-protected key storage and the explicit wipe helpers.
#include "keystore/keystore.h"

#include <gtest/gtest.h>

#include "core/wipe.h"
#include "hashing/drbg.h"

namespace tre::keystore {
namespace {

class KeystoreTest : public ::testing::Test {
 protected:
  hashing::HmacDrbg rng_{to_bytes("keystore-tests")};
};

TEST_F(KeystoreTest, SealOpenRoundtrip) {
  Bytes secret = rng_.bytes(20);
  Bytes blob = seal(secret, "correct horse", rng_, /*iterations=*/100);
  auto opened = open(blob, "correct horse");
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, secret);
}

TEST_F(KeystoreTest, WrongPasswordRejected) {
  Bytes blob = seal(rng_.bytes(20), "correct horse", rng_, 100);
  EXPECT_FALSE(open(blob, "battery staple").has_value());
  EXPECT_FALSE(open(blob, "").has_value());
  EXPECT_FALSE(open(blob, "correct horsE").has_value());
}

TEST_F(KeystoreTest, TamperingDetected) {
  Bytes blob = seal(rng_.bytes(32), "pw", rng_, 100);
  for (size_t i = 0; i < blob.size(); i += 7) {
    Bytes mutated = blob;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(open(mutated, "pw").has_value()) << "byte " << i;
  }
  // Truncations never open.
  for (size_t len = 0; len < blob.size(); len += 5) {
    EXPECT_FALSE(open(ByteSpan(blob.data(), len), "pw").has_value());
  }
}

TEST_F(KeystoreTest, SaltsMakeBlobsUnique) {
  Bytes secret = rng_.bytes(20);
  Bytes b1 = seal(secret, "pw", rng_, 100);
  Bytes b2 = seal(secret, "pw", rng_, 100);
  EXPECT_NE(b1, b2);
  EXPECT_EQ(*open(b1, "pw"), *open(b2, "pw"));
}

TEST_F(KeystoreTest, DeriveKeyIsDeterministicAndCostSensitive) {
  Bytes salt = rng_.bytes(16);
  EXPECT_EQ(derive_key("pw", salt, 100, 32), derive_key("pw", salt, 100, 32));
  EXPECT_NE(derive_key("pw", salt, 100, 32), derive_key("pw", salt, 101, 32));
  EXPECT_NE(derive_key("pw", salt, 100, 32), derive_key("pq", salt, 100, 32));
  EXPECT_THROW(derive_key("pw", salt, 0, 32), Error);
}

TEST_F(KeystoreTest, EmptySecretRoundtrips) {
  Bytes blob = seal({}, "pw", rng_, 100);
  auto opened = open(blob, "pw");
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Wipe, ScalarAndKeyPairsZeroized) {
  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("wipe-tests"));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  core::KeyUpdate upd = scheme.issue_update(server, "T");
  core::EpochKey ek = scheme.derive_epoch_key(user.a, upd);

  EXPECT_FALSE(server.s.is_zero());
  core::wipe(server);
  EXPECT_TRUE(server.s.is_zero());

  core::wipe(user);
  EXPECT_TRUE(user.a.is_zero());

  core::wipe(ek);
  EXPECT_TRUE(ek.d.is_infinity());
  EXPECT_TRUE(ek.tag.empty());
}

}  // namespace
}  // namespace tre::keystore
