// SnapshotCache: the RCU-style read-mostly map behind the core::Tuning
// memo caches. Covers both substrates (snapshot and legacy locked mode),
// the flood-guard bound, first-write-wins inserts, the contended-lock
// hook, and multi-threaded read/write storms (the data-race proof is
// TSan's, via the sanitizer tree; the assertions here are functional).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/snapshot_cache.h"

namespace tre {
namespace {

SnapshotCacheOptions with_mode(bool snapshots, size_t max_entries = 1024) {
  SnapshotCacheOptions opt;
  opt.max_entries = max_entries;
  opt.snapshots = snapshots;
  return opt;
}

class SnapshotCacheModes : public ::testing::TestWithParam<bool> {};

TEST_P(SnapshotCacheModes, InsertFindRoundtrip) {
  SnapshotCache<int> cache(with_mode(GetParam()));
  EXPECT_FALSE(cache.find("missing").has_value());
  EXPECT_FALSE(cache.contains("missing"));

  cache.insert("alpha", 1);
  cache.insert("beta", 2);
  ASSERT_TRUE(cache.find("alpha").has_value());
  EXPECT_EQ(*cache.find("alpha"), 1);
  EXPECT_EQ(*cache.find("beta"), 2);
  EXPECT_EQ(cache.size(), 2u);

  // Repeated finds exercise the warm thread-local slot path.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*cache.find("alpha"), 1);
}

TEST_P(SnapshotCacheModes, FirstWriteWins) {
  // Values are deterministic per key in every cache this backs, so a
  // duplicate insert (two threads racing the same miss) must be a no-op.
  SnapshotCache<int> cache(with_mode(GetParam()));
  cache.insert("k", 7);
  cache.insert("k", 99);
  EXPECT_EQ(*cache.find("k"), 7);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_P(SnapshotCacheModes, FloodGuardBoundsEachShard) {
  constexpr size_t kMax = 64;  // 16 per shard
  SnapshotCache<int> cache(with_mode(GetParam(), kMax));
  for (int i = 0; i < 10 * static_cast<int>(kMax); ++i) {
    cache.insert("flood-" + std::to_string(i), i);
  }
  // Wholesale clearing keeps every shard under its share.
  EXPECT_LE(cache.size(), kMax);
  EXPECT_GT(cache.size(), 0u);
}

TEST_P(SnapshotCacheModes, ReadersSeeWritesAcrossThreads) {
  SnapshotCache<std::uint64_t> cache(with_mode(GetParam()));
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  std::atomic<int> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 200; ++round) {
        const int k = (w + round) % kKeys;
        const std::string key = "key-" + std::to_string(k);
        const auto expect = static_cast<std::uint64_t>(k) * 1000003u;
        if (auto hit = cache.find(key)) {
          if (*hit != expect) mismatches.fetch_add(1);
        } else {
          cache.insert(key, expect);  // deterministic: races are benign
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  for (int k = 0; k < kKeys; ++k) {
    auto hit = cache.find("key-" + std::to_string(k));
    ASSERT_TRUE(hit.has_value()) << "key " << k;
    EXPECT_EQ(*hit, static_cast<std::uint64_t>(k) * 1000003u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothSubstrates, SnapshotCacheModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("snapshot")
                                             : std::string("locked");
                         });

TEST(SnapshotCacheEquivalence, ModesAgreeOnEveryLookup) {
  SnapshotCache<int> fast(with_mode(true));
  SnapshotCache<int> locked(with_mode(false));
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i % 50);
    fast.insert(key, i % 50);
    locked.insert(key, i % 50);
  }
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(fast.find(key), locked.find(key));
  }
  EXPECT_EQ(fast.size(), locked.size());
  EXPECT_EQ(fast.find("absent"), locked.find("absent"));
}

std::atomic<std::uint64_t> g_waits{0};
void count_wait(std::uint64_t) { g_waits.fetch_add(1); }

TEST(SnapshotCacheLockWait, HookFiresOnlyWhenContended) {
  g_waits.store(0);
  SnapshotCacheOptions opt;
  opt.lock_wait_ns = &count_wait;
  SnapshotCache<int> cache(opt);

  // Single-threaded: every acquisition is uncontended, hook stays silent.
  for (int i = 0; i < 100; ++i) {
    cache.insert("k" + std::to_string(i), i);
    (void)cache.find("k" + std::to_string(i));
  }
  EXPECT_EQ(g_waits.load(), 0u);

  // Writer storm on few keys: contention is likely but not guaranteed on
  // a given schedule, so only assert the hook doesn't fire spuriously
  // relative to the number of acquisitions.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) cache.insert("hot-" + std::to_string(i % 4), i);
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_LE(g_waits.load(), 4u * 500u);
}

TEST(SnapshotCacheLifetime, NewCacheDoesNotInheritStaleSlots) {
  // Shard ids are process-unique: a fresh cache must miss where a
  // destroyed cache (whose slots may linger in this thread's TLS) hit.
  for (int round = 0; round < 3; ++round) {
    SnapshotCache<int> cache(with_mode(true));
    EXPECT_FALSE(cache.find("x").has_value());
    cache.insert("x", round);
    EXPECT_EQ(*cache.find("x"), round);
  }
}

}  // namespace
}  // namespace tre
