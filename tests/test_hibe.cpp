// Gentry-Silverberg HIBE: extraction, derivation, encryption at every
// depth, and the containment properties the hierarchical archive needs.
#include "hibe/hibe.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::hibe {
namespace {

class HibeTest : public ::testing::Test {
 protected:
  HibeTest()
      : params_(params::load("tre-toy-96")),
        hibe_(params_),
        rng_(to_bytes("hibe-tests")),
        root_(hibe_.setup(rng_)),
        root_pub_(GsHibe::public_of(root_)) {}

  Scalar fresh_secret() { return params::random_scalar(*params_, rng_); }

  std::shared_ptr<const params::GdhParams> params_;
  GsHibe hibe_;
  hashing::HmacDrbg rng_;
  RootKey root_;
  RootPublicKey root_pub_;
};

TEST_F(HibeTest, DepthOneRoundtrip) {
  NodeKey alice = hibe_.extract_root_child(root_, "alice", fresh_secret());
  EXPECT_TRUE(hibe_.verify_node_key(root_pub_, alice));
  Bytes msg = to_bytes("level one");
  auto ct = hibe_.encrypt(msg, {"alice"}, root_pub_, rng_);
  EXPECT_TRUE(ct.us.empty());
  EXPECT_EQ(hibe_.decrypt(ct, alice), msg);
}

TEST_F(HibeTest, DepthTwoAndThreeRoundtrip) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  NodeKey team = hibe_.derive_child(root_.p0, org, "team", fresh_secret());
  NodeKey member = hibe_.derive_child(root_.p0, team, "member", fresh_secret());
  EXPECT_TRUE(hibe_.verify_node_key(root_pub_, team));
  EXPECT_TRUE(hibe_.verify_node_key(root_pub_, member));

  Bytes msg = to_bytes("deep message");
  auto ct2 = hibe_.encrypt(msg, {"org", "team"}, root_pub_, rng_);
  EXPECT_EQ(ct2.us.size(), 1u);
  EXPECT_EQ(hibe_.decrypt(ct2, team), msg);

  auto ct3 = hibe_.encrypt(msg, {"org", "team", "member"}, root_pub_, rng_);
  EXPECT_EQ(ct3.us.size(), 2u);
  EXPECT_EQ(hibe_.decrypt(ct3, member), msg);
}

TEST_F(HibeTest, AncestorDerivesButSiblingCannotDecrypt) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  NodeKey team_a = hibe_.derive_child(root_.p0, org, "team-a", fresh_secret());
  NodeKey team_b = hibe_.derive_child(root_.p0, org, "team-b", fresh_secret());
  Bytes msg = to_bytes("for team-a");
  auto ct = hibe_.encrypt(msg, {"org", "team-a"}, root_pub_, rng_);
  EXPECT_EQ(hibe_.decrypt(ct, team_a), msg);
  EXPECT_NE(hibe_.decrypt(ct, team_b), msg);
}

TEST_F(HibeTest, PublicDerivationIsConsistent) {
  // Anyone holding a parent key WITH its secret derives working child
  // keys, regardless of the child secret they choose.
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  NodeKey child_x = hibe_.derive_child(root_.p0, org, "child", Scalar::from_u64(1));
  NodeKey child_y = hibe_.derive_child(root_.p0, org, "child", fresh_secret());
  Bytes msg = to_bytes("any derivation works");
  auto ct = hibe_.encrypt(msg, {"org", "child"}, root_pub_, rng_);
  EXPECT_EQ(hibe_.decrypt(ct, child_x), msg);
  EXPECT_EQ(hibe_.decrypt(ct, child_y), msg);
}

TEST_F(HibeTest, StrippedKeyCannotDerive) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  NodeKey leaf_only = org.without_derivation();
  EXPECT_FALSE(leaf_only.can_derive);
  EXPECT_THROW(hibe_.derive_child(root_.p0, leaf_only, "child", fresh_secret()), Error);
  // It still decrypts at its own level.
  Bytes msg = to_bytes("still a key");
  auto ct = hibe_.encrypt(msg, {"org"}, root_pub_, rng_);
  EXPECT_EQ(hibe_.decrypt(ct, leaf_only), msg);
}

TEST_F(HibeTest, PathEncodingIsUnambiguous) {
  // ("ab","c") and ("a","bc") must address different nodes.
  NodeKey ab_c_parent = hibe_.extract_root_child(root_, "ab", fresh_secret());
  NodeKey ab_c = hibe_.derive_child(root_.p0, ab_c_parent, "c", fresh_secret());
  Bytes msg = to_bytes("path safety");
  auto ct = hibe_.encrypt(msg, {"a", "bc"}, root_pub_, rng_);
  EXPECT_NE(hibe_.decrypt(ct, ab_c), msg);
}

TEST_F(HibeTest, VerifyRejectsForgedKeys) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  NodeKey team = hibe_.derive_child(root_.p0, org, "team", fresh_secret());
  NodeKey forged = team;
  forged.s = forged.s.doubled();
  EXPECT_FALSE(hibe_.verify_node_key(root_pub_, forged));
  NodeKey relabeled = team;
  relabeled.path = {"org", "other-team"};
  EXPECT_FALSE(hibe_.verify_node_key(root_pub_, relabeled));
}

TEST_F(HibeTest, DepthMismatchRejected) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  auto ct = hibe_.encrypt(to_bytes("m"), {"org", "team"}, root_pub_, rng_);
  EXPECT_THROW(hibe_.decrypt(ct, org), Error);
}

TEST_F(HibeTest, EscrowIsInherentAtTheRoot) {
  // The root can reconstruct any key — the reason the TRE wrapper binds
  // the session key to the receiver secret.
  NodeKey reconstructed = hibe_.extract_root_child(root_, "victim", fresh_secret());
  Bytes msg = to_bytes("root reads this");
  auto ct = hibe_.encrypt(msg, {"victim"}, root_pub_, rng_);
  EXPECT_EQ(hibe_.decrypt(ct, reconstructed), msg);
}

TEST_F(HibeTest, NodeKeySerializationRoundtrip) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  NodeKey team = hibe_.derive_child(root_.p0, org, "team", fresh_secret());

  // With derivation secret.
  Bytes wire = team.to_bytes(*params_);
  NodeKey back = NodeKey::from_bytes(*params_, wire);
  EXPECT_EQ(back.path, team.path);
  EXPECT_EQ(back.s, team.s);
  EXPECT_EQ(back.q.size(), team.q.size());
  EXPECT_TRUE(back.can_derive);
  EXPECT_EQ(back.secret, team.secret);
  EXPECT_TRUE(hibe_.verify_node_key(root_pub_, back));

  // Stripped: no secret on the wire.
  NodeKey leaf = team.without_derivation();
  Bytes leaf_wire = leaf.to_bytes(*params_);
  EXPECT_LT(leaf_wire.size(), wire.size());
  NodeKey leaf_back = NodeKey::from_bytes(*params_, leaf_wire);
  EXPECT_FALSE(leaf_back.can_derive);
  Bytes msg = to_bytes("wire key decrypts");
  auto ct = hibe_.encrypt(msg, {"org", "team"}, root_pub_, rng_);
  EXPECT_EQ(hibe_.decrypt(ct, leaf_back), msg);
}

TEST_F(HibeTest, NodeKeyDeserializationRejectsDamage) {
  NodeKey org = hibe_.extract_root_child(root_, "org", fresh_secret());
  Bytes wire = org.to_bytes(*params_);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(NodeKey::from_bytes(*params_, ByteSpan(wire.data(), len)), Error);
  }
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_THROW(NodeKey::from_bytes(*params_, extended), Error);
}

}  // namespace
}  // namespace tre::hibe
