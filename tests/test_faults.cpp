// Deterministic fault injection: scripted partitions, crash windows and
// Byzantine mirror behaviours, and their effect on the simulated network.
#include "simnet/faults.h"

#include <gtest/gtest.h>

#include "simnet/mirrors.h"

namespace tre::simnet {
namespace {

TEST(FaultPlanTest, WindowsAreHalfOpen) {
  FaultPlan plan(to_bytes("w"));
  plan.partition_link(0, 1, 10, 20);
  EXPECT_TRUE(plan.link_up(0, 1, 9));
  EXPECT_FALSE(plan.link_up(0, 1, 10));
  EXPECT_FALSE(plan.link_up(0, 1, 19));
  EXPECT_TRUE(plan.link_up(0, 1, 20));
  // Symmetric in the endpoints.
  EXPECT_FALSE(plan.link_up(1, 0, 15));
  // Other links unaffected.
  EXPECT_TRUE(plan.link_up(0, 2, 15));

  plan.crash_node(3, 5, 8);
  plan.crash_node(3, 12, 14);  // windows accumulate
  EXPECT_FALSE(plan.node_up(3, 5));
  EXPECT_TRUE(plan.node_up(3, 8));
  EXPECT_FALSE(plan.node_up(3, 13));
  EXPECT_TRUE(plan.node_up(3, 14));
  EXPECT_TRUE(plan.node_up(4, 6));
}

TEST(FaultPlanTest, ValidatesInputs) {
  FaultPlan plan(to_bytes("v"));
  EXPECT_THROW(plan.partition_link(1, 1, 0, 5), Error);
  EXPECT_THROW(plan.partition_link(0, 1, 5, 4), Error);
  EXPECT_THROW(plan.crash_node(0, 9, 3), Error);
  EXPECT_THROW(plan.flip_one_bit({}), Error);
}

TEST(FaultPlanTest, ByzantineAssignmentAndReset) {
  FaultPlan plan(to_bytes("b"));
  EXPECT_EQ(plan.behaviour(7), ByzantineMode::kHonest);
  plan.set_byzantine(7, ByzantineMode::kGarbage);
  EXPECT_EQ(plan.behaviour(7), ByzantineMode::kGarbage);
  plan.set_byzantine(7, ByzantineMode::kHonest);
  EXPECT_EQ(plan.behaviour(7), ByzantineMode::kHonest);
  EXPECT_TRUE(plan.empty());  // honest reset leaves no scripted fault
}

TEST(FaultPlanTest, CorruptionIsDeterministicPerSeed) {
  Bytes wire = to_bytes("some update bytes on the wire");
  FaultPlan a(to_bytes("seed-1"));
  FaultPlan b(to_bytes("seed-1"));
  FaultPlan c(to_bytes("seed-2"));
  Bytes fa = a.flip_one_bit(wire);
  Bytes fb = b.flip_one_bit(wire);
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, wire);
  // Exactly one bit differs.
  int bits = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    bits += __builtin_popcount(static_cast<unsigned>(fa[i] ^ wire[i]));
  }
  EXPECT_EQ(bits, 1);
  EXPECT_EQ(a.garbage(16), b.garbage(16));
  EXPECT_NE(a.garbage(16), c.garbage(16));
}

class FaultedNetworkTest : public ::testing::Test {
 protected:
  FaultedNetworkTest()
      : timeline_(0),
        net_(timeline_, to_bytes("faultnet")),
        plan_(to_bytes("faultnet-plan")) {
    net_.set_fault_plan(&plan_);
    a_ = net_.add_node("a");
    b_ = net_.add_node("b");
    net_.connect(a_, b_, LinkSpec{.base_delay = 2});
  }

  server::Timeline timeline_;
  Network net_;
  FaultPlan plan_;
  NodeId a_ = 0, b_ = 0;
};

TEST_F(FaultedNetworkTest, PartitionDropsThenHeals) {
  plan_.partition_link(a_, b_, 0, 10);
  int delivered = 0;
  net_.send(a_, b_, 1, [&] { ++delivered; });  // during the partition
  timeline_.advance_to(10);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.stats().fault_drops, 1u);
  net_.send(a_, b_, 1, [&] { ++delivered; });  // after it heals
  timeline_.advance_to(20);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_.stats().fault_drops, 1u);
}

TEST_F(FaultedNetworkTest, CrashedSenderCannotSend) {
  plan_.crash_node(a_, 0, 5);
  bool delivered = false;
  net_.send(a_, b_, 1, [&] { delivered = true; });
  timeline_.advance_to(10);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().fault_drops, 1u);
}

TEST_F(FaultedNetworkTest, ReceiverDownAtArrivalLosesTheMessage) {
  // Sent at t=0 (both ends up), arrives t=2 while b is down.
  plan_.crash_node(b_, 1, 5);
  bool delivered = false;
  net_.send(a_, b_, 1, [&] { delivered = true; });
  timeline_.advance_to(10);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().fault_drops, 1u);
  // The same send after recovery goes through.
  net_.send(a_, b_, 1, [&] { delivered = true; });
  timeline_.advance_to(20);
  EXPECT_TRUE(delivered);
}

TEST_F(FaultedNetworkTest, CrashedMirrorMissesReplication) {
  auto params = params::load("tre-toy-96");
  core::TreScheme scheme(params);
  hashing::HmacDrbg rng(to_bytes("crash-rng"));
  core::ServerKeyPair server = scheme.server_keygen(rng);

  MirroredArchive cluster(params, net_, timeline_, 2, LinkSpec{.base_delay = 1});
  // Mirror 0 is down when replication arrives; mirror 1 is fine.
  plan_.crash_node(cluster.mirror_node(0), 0, 10);
  cluster.publish(scheme.issue_update(server, "T1"));
  timeline_.advance_to(20);

  NodeId rx = net_.add_node("rx");
  bool got0 = false, got1 = false;
  cluster.fetch(rx, 0, "T1", LinkSpec{.base_delay = 1}, 4, 2,
                [&](const core::KeyUpdate&) { got0 = true; });
  cluster.fetch(rx, 1, "T1", LinkSpec{.base_delay = 1}, 4, 2,
                [&](const core::KeyUpdate&) { got1 = true; });
  timeline_.advance_to(100);
  EXPECT_FALSE(got0);  // replica never stored the update
  EXPECT_TRUE(got1);
}

TEST(FaultDeterminismTest, IdenticalSeedsReplayIdentically) {
  auto run = [] {
    server::Timeline timeline(0);
    Network net(timeline, to_bytes("replay"));
    FaultPlan plan(to_bytes("replay-plan"));
    net.set_fault_plan(&plan);
    NodeId a = net.add_node("a");
    NodeId b = net.add_node("b");
    net.connect(a, b, LinkSpec{.base_delay = 1, .jitter = 3, .loss = 0.3});
    plan.partition_link(a, b, 40, 60);
    int delivered = 0;
    for (int t = 0; t < 100; ++t) {
      timeline.schedule(t, [&, a, b] {
        net.send(a, b, 1, [&] { ++delivered; });
      });
    }
    timeline.advance_to(200);
    return std::make_pair(delivered, net.stats().fault_drops);
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.first, 0);
  EXPECT_GT(first.second, 0u);
}

}  // namespace
}  // namespace tre::simnet
