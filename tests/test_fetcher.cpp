// UpdateFetcher: the hardened verify-everything fetch pipeline. The
// acceptance bar for this suite is the paper's own trust argument —
// updates self-authenticate, so receivers survive arbitrary mirror
// misbehaviour as long as ONE honest replica exists, and never accept
// bytes that fail the pairing check.
#include "client/fetcher.h"
#include "client/simnet_source.h"

#include <gtest/gtest.h>

#include "timeserver/timespec.h"

namespace tre::client {
namespace {

using simnet::ByzantineMode;
using simnet::FaultPlan;
using simnet::LinkSpec;
using simnet::MirroredArchive;
using simnet::Network;
using simnet::NodeId;

class FetcherTest : public ::testing::Test {
 protected:
  FetcherTest()
      : timeline_(0),
        net_(timeline_, to_bytes("fetcher-net")),
        plan_(to_bytes("fetcher-plan")),
        params_(params::load("tre-toy-96")),
        scheme_(params_),
        rng_(to_bytes("fetcher-rng")),
        server_(scheme_.server_keygen(rng_)) {
    net_.set_fault_plan(&plan_);
  }

  // Builds a cluster and a fetcher over all its mirrors for node rx_.
  std::unique_ptr<MirroredArchive> cluster(size_t mirrors) {
    auto c = std::make_unique<MirroredArchive>(params_, net_, timeline_, mirrors,
                                               LinkSpec{.base_delay = 1});
    rx_ = net_.add_node("rx");
    return c;
  }

  // The simnet leg of the transport seam; sources must outlive fetchers.
  SimnetSource& source(MirroredArchive& archive,
                       LinkSpec access = LinkSpec{.base_delay = 1}) {
    sources_.push_back(
        std::make_unique<SimnetSource>(archive, rx_, access));
    return *sources_.back();
  }

  std::unique_ptr<UpdateFetcher> fetcher(MirroredArchive& archive,
                                         FetcherConfig cfg = {}) {
    std::vector<size_t> order(archive.mirror_count());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    return std::make_unique<UpdateFetcher>(scheme_, server_.pub,
                                           source(archive), timeline_, order,
                                           to_bytes("fetcher-jitter"), cfg);
  }

  core::KeyUpdate update(const std::string& tag) {
    return scheme_.issue_update(server_, tag);
  }

  server::Timeline timeline_;
  Network net_;
  FaultPlan plan_;
  std::shared_ptr<const params::GdhParams> params_;
  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
  NodeId rx_ = 0;
  std::vector<std::unique_ptr<SimnetSource>> sources_;
};

TEST_F(FetcherTest, HonestMirrorHappyPath) {
  auto c = cluster(2);
  c->publish(update("T1"));
  timeline_.advance_to(2);

  auto f = fetcher(*c);
  std::optional<FetchResult> got;
  f->fetch_verified({"T1"}, [&](const FetchResult& r) { got = r; });
  timeline_.advance_to(50);

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(scheme_.verify_update(server_.pub, got->update));
  EXPECT_EQ(got->update.tag, "T1");
  EXPECT_FALSE(got->via_fallback);
  EXPECT_EQ(got->stats.total_rejected(), 0u);
  EXPECT_GE(f->health(0), 1);  // success promoted the mirror
  EXPECT_FALSE(f->busy());
}

// The headline property: all-but-one mirrors Byzantine — one of each
// flavour — and the fetcher still converges on a VERIFIED update with
// zero forged acceptances.
TEST_F(FetcherTest, SingleHonestMirrorSuffices) {
  auto c = cluster(4);
  plan_.set_byzantine(c->mirror_node(0), ByzantineMode::kBitFlip);
  plan_.set_byzantine(c->mirror_node(1), ByzantineMode::kGarbage);
  plan_.set_byzantine(c->mirror_node(2), ByzantineMode::kRelabel);
  // Mirror 3 is honest.
  c->publish(update("stale"));  // relabel ammunition
  c->publish(update("T1"));
  timeline_.advance_to(2);

  FetcherConfig cfg;
  cfg.failover_after = 2;
  cfg.attempts_per_tag = 32;
  auto f = fetcher(*c, cfg);
  std::optional<FetchResult> got;
  f->fetch_verified({"T1"}, [&](const FetchResult& r) { got = r; });
  timeline_.advance_to(2000);

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(scheme_.verify_update(server_.pub, got->update));
  EXPECT_EQ(got->update, update("T1"));  // bit-exact: the genuine signature
  EXPECT_GT(got->stats.total_rejected(), 0u);  // Byzantine replies were seen
  EXPECT_GT(got->stats.failovers, 0u);
  // Misbehaving replicas were demoted below the honest one.
  EXPECT_GT(f->health(3), f->health(0));
  EXPECT_GT(f->health(3), f->health(1));
  EXPECT_GT(f->health(3), f->health(2));
}

TEST_F(FetcherTest, RejectionCausesAreAttributed) {
  // One mirror per adversary; no honest mirror, bounded budget, so every
  // counter fills and the fetch ultimately fails — with zero accepts.
  auto c = cluster(3);
  plan_.set_byzantine(c->mirror_node(0), ByzantineMode::kBitFlip);
  plan_.set_byzantine(c->mirror_node(1), ByzantineMode::kRelabel);
  plan_.set_byzantine(c->mirror_node(2), ByzantineMode::kDrop);
  c->publish(update("stale"));
  c->publish(update("T1"));
  timeline_.advance_to(2);

  FetcherConfig cfg;
  cfg.failover_after = 1;  // rotate on every failure: visit all three
  cfg.attempts_per_tag = 12;
  auto f = fetcher(*c, cfg);
  bool succeeded = false;
  std::optional<FetchStats> failure;
  f->fetch_verified({"T1"}, [&](const FetchResult&) { succeeded = true; },
                    [&](const FetchStats& s) { failure = s; });
  timeline_.advance_to(5000);

  EXPECT_FALSE(succeeded);  // nothing verifiable was ever served
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->attempts, 12u);
  // A flipped bit lands either in the point encoding (parse reject) or
  // the tag bytes (tag/sig reject); relabelling always fails the pairing
  // check; the dropper only produces timeouts.
  EXPECT_GT(failure->total_rejected(), 0u);
  EXPECT_GT(failure->rejected_sig, 0u);
  EXPECT_GT(failure->timeouts, 0u);
}

TEST_F(FetcherTest, SurvivesHeavyLossAndJitter) {
  auto c = cluster(2);
  c->publish(update("T1"));
  timeline_.advance_to(5);

  // 50% loss, 0-3 s jitter on the access link, both directions.
  rx_ = net_.add_node("rx-lossy");
  std::vector<size_t> order = {0, 1};
  FetcherConfig cfg;
  cfg.reply_timeout = 10;  // > worst-case RTT under jitter
  cfg.attempts_per_tag = 64;
  UpdateFetcher f(scheme_, server_.pub,
                  source(*c, LinkSpec{.base_delay = 1, .jitter = 3, .loss = 0.5}),
                  timeline_, order, to_bytes("lossy-jitter"), cfg);
  std::optional<FetchResult> got;
  f.fetch_verified({"T1"}, [&](const FetchResult& r) { got = r; });
  timeline_.advance_to(5000);

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(scheme_.verify_update(server_.pub, got->update));
}

TEST_F(FetcherTest, FallsBackToCoarserChainTag) {
  auto c = cluster(2);
  // The precise second-level update never appears (say the server's
  // second-granularity feed is partitioned away); the minute boundary
  // broadcast does.
  server::TimeSpec release =
      server::TimeSpec::from_unix(1117990830, server::Granularity::kSecond);
  auto chain = server::fallback_chain(release, server::Granularity::kMinute);
  ASSERT_EQ(chain.size(), 2u);
  c->publish(update(chain[1].canonical()));
  timeline_.advance_to(2);

  FetcherConfig cfg;
  cfg.attempts_per_tag = 3;  // burn the precise budget quickly
  auto f = fetcher(*c, cfg);
  std::optional<FetchResult> got;
  f->fetch_release(release, server::Granularity::kMinute,
                   [&](const FetchResult& r) { got = r; });
  timeline_.advance_to(5000);

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->via_fallback);
  EXPECT_EQ(got->stats.fallback_steps, 1u);
  EXPECT_EQ(got->update.tag, chain[1].canonical());

  // And the coarse update actually opens a ResilientTre ciphertext for
  // the precise release — precision degraded, availability kept.
  server::ResilientTre resilient(params_);
  core::UserKeyPair user = scheme_.user_keygen(server_.pub, rng_);
  Bytes msg = to_bytes("fallback path works");
  core::AnyCiphertext ct = resilient.encrypt(msg, user.pub, server_.pub, release,
                                             rng_, server::Granularity::kMinute);
  EXPECT_EQ(resilient.decrypt(ct, user.a, got->update), msg);
}

TEST_F(FetcherTest, MirrorCrashAndRecoveryWithinOneFetch) {
  auto c = cluster(1);
  c->publish(update("T1"));
  // The only mirror takes a nap covering replication AND early polls;
  // a later publish refreshes it after recovery.
  plan_.crash_node(c->mirror_node(0), 0, 60);
  timeline_.schedule(70, [&] { c->publish(update("T1")); });

  FetcherConfig cfg;
  cfg.attempts_per_tag = 32;
  cfg.max_backoff = 16;
  auto f = fetcher(*c, cfg);
  std::optional<FetchResult> got;
  f->fetch_verified({"T1"}, [&](const FetchResult& r) { got = r; });
  timeline_.advance_to(5000);

  ASSERT_TRUE(got.has_value());
  EXPECT_GE(got->completed_at, 70);
  EXPECT_GT(got->stats.timeouts, 0u);  // the crash window cost polls
}

TEST_F(FetcherTest, DeterministicPerSeed) {
  auto run = [&](const char* net_seed) {
    server::Timeline timeline(0);
    Network net(timeline, to_bytes(net_seed));
    FaultPlan plan(to_bytes("det-plan"));
    net.set_fault_plan(&plan);
    MirroredArchive c(params_, net, timeline, 2,
                      LinkSpec{.base_delay = 1, .jitter = 2});
    plan.set_byzantine(c.mirror_node(0), ByzantineMode::kGarbage);
    c.publish(update("T1"));
    NodeId rx = net.add_node("rx");
    SimnetSource src(c, rx, LinkSpec{.base_delay = 1, .loss = 0.3});
    UpdateFetcher f(scheme_, server_.pub, src, timeline, {0, 1},
                    to_bytes("det-jitter"), {});
    std::int64_t done_at = -1;
    timeline.schedule(2, [&] {
      f.fetch_verified({"T1"}, [&](const FetchResult& r) { done_at = r.completed_at; });
    });
    timeline.advance_to(5000);
    return done_at;
  };
  std::int64_t first = run("det-net");
  EXPECT_EQ(first, run("det-net"));
  EXPECT_GE(first, 0);
}

TEST_F(FetcherTest, ValidatesConfigurationAndUsage) {
  auto c = cluster(2);
  auto f = fetcher(*c);
  EXPECT_THROW(f->fetch_verified({}, [](const FetchResult&) {}), Error);
  EXPECT_THROW(f->fetch_verified({"T"}, nullptr), Error);
  f->fetch_verified({"T"}, [](const FetchResult&) {});
  EXPECT_TRUE(f->busy());
  EXPECT_THROW(f->fetch_verified({"T"}, [](const FetchResult&) {}), Error);

  SimnetSource& src = source(*c);
  EXPECT_THROW(UpdateFetcher(scheme_, server_.pub, src, timeline_, {},
                             to_bytes("s"), {}),
               Error);
  // Slot 2 is out of range for a 2-mirror source; kOrigin is in range
  // because the simnet adapter HAS an origin.
  EXPECT_THROW(UpdateFetcher(scheme_, server_.pub, src, timeline_, {0, 2},
                             to_bytes("s"), {}),
               Error);
  UpdateFetcher origin_ok(scheme_, server_.pub, src, timeline_,
                          {0, UpdateSource::kOrigin}, to_bytes("s"), {});
  EXPECT_FALSE(origin_ok.busy());
  FetcherConfig bad;
  bad.base_backoff = 0;
  EXPECT_THROW(UpdateFetcher(scheme_, server_.pub, src, timeline_, {0},
                             to_bytes("s"), bad),
               Error);
}

// Satellite of the transport redesign: per-mirror backoff state survives
// fetch() boundaries. A mirror that kept failing through fetch #1 starts
// fetch #2 still penalized; a verified success resets only that mirror.
TEST_F(FetcherTest, BackoffStatePersistsAcrossFetches) {
  auto c = cluster(1);
  plan_.set_byzantine(c->mirror_node(0), ByzantineMode::kDrop);
  c->publish(update("T1"));
  timeline_.advance_to(2);

  FetcherConfig cfg;
  cfg.base_backoff = 1;
  cfg.max_backoff = 64;
  cfg.attempts_per_tag = 8;
  auto f = fetcher(*c, cfg);
  EXPECT_EQ(f->backoff_hint(0), cfg.base_backoff);

  bool failed = false;
  f->fetch_verified({"T1"}, [](const FetchResult&) {},
                    [&](const FetchStats&) { failed = true; });
  timeline_.advance_to(5000);
  ASSERT_TRUE(failed);
  const std::int64_t penalty = f->backoff_hint(0);
  EXPECT_GT(penalty, cfg.base_backoff);  // dropping cost the mirror its standing

  // Fetch #2 starts from the penalty, not from a fresh base_backoff: the
  // very first retry sleep already jitters within [base, penalty*3].
  f->fetch_verified({"T1"}, [](const FetchResult&) {},
                    [&](const FetchStats&) {});
  timeline_.advance_to(10000);
  EXPECT_GE(f->backoff_hint(0), cfg.base_backoff);

  // Mirror heals: a verified success is the only thing that resets it.
  plan_.set_byzantine(c->mirror_node(0), ByzantineMode::kHonest);
  c->publish(update("T1"));  // replica missed replication while dropping
  std::optional<FetchResult> got;
  f->fetch_verified({"T1"}, [&](const FetchResult& r) { got = r; });
  timeline_.advance_to(20000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(f->backoff_hint(0), cfg.base_backoff);
}

}  // namespace
}  // namespace tre::client
