// End-to-end tests of the paper's §5.1 TRE scheme and its §5.3 extensions.
#include "core/tre.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"
#include "hashing/kdf.h"

namespace tre::core {
namespace {

constexpr const char* kTag = "2005-06-06T09:00:00Z";
constexpr const char* kOtherTag = "2005-06-06T09:00:01Z";

class TreTest : public ::testing::Test {
 protected:
  TreTest()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("tre-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  Bytes msg(const char* s = "attack at dawn") { return to_bytes(s); }

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair server_;
  UserKeyPair user_;
};

// --- Keys -------------------------------------------------------------------

TEST_F(TreTest, ServerKeysVerify) {
  EXPECT_TRUE(scheme_.verify_server_public_key(server_.pub));
  EXPECT_FALSE(server_.pub.g == server_.pub.sg);
}

TEST_F(TreTest, UserKeysVerify) {
  EXPECT_TRUE(scheme_.verify_user_public_key(server_.pub, user_.pub));
}

TEST_F(TreTest, MalformedUserKeyRejected) {
  // asg replaced by a random point: the paper's step-1 check must fail,
  // because such a receiver could decrypt without the server update.
  UserKeyPair other = scheme_.user_keygen(server_.pub, rng_);
  UserPublicKey forged{user_.pub.ag, other.pub.asg};
  EXPECT_FALSE(scheme_.verify_user_public_key(server_.pub, forged));
  EXPECT_THROW(
      scheme_.encrypt(msg(), forged, server_.pub, kTag, rng_, KeyCheck::kVerify),
      Error);
}

TEST_F(TreTest, UserKeyNotBoundToOtherServer) {
  ServerKeyPair other_server = scheme_.server_keygen(rng_);
  EXPECT_FALSE(scheme_.verify_user_public_key(other_server.pub, user_.pub));
}

TEST_F(TreTest, PasswordKeygenDeterministic) {
  UserKeyPair a = scheme_.user_keygen_from_password(server_.pub, "hunter2");
  UserKeyPair b = scheme_.user_keygen_from_password(server_.pub, "hunter2");
  EXPECT_EQ(a.a, b.a);
  EXPECT_TRUE(a.pub == b.pub);
  EXPECT_TRUE(scheme_.verify_user_public_key(server_.pub, a.pub));
  UserKeyPair c = scheme_.user_keygen_from_password(server_.pub, "hunter3");
  EXPECT_NE(a.a, c.a);
  // Same password under a different server yields an unrelated secret.
  ServerKeyPair s2 = scheme_.server_keygen(rng_);
  UserKeyPair d = scheme_.user_keygen_from_password(s2.pub, "hunter2");
  EXPECT_NE(a.a, d.a);
}

// --- Updates -----------------------------------------------------------------

TEST_F(TreTest, UpdateSelfAuthenticates) {
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_EQ(upd.tag, kTag);
  EXPECT_TRUE(scheme_.verify_update(server_.pub, upd));
}

TEST_F(TreTest, ForgedUpdateRejected) {
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  // Wrong tag claimed for a valid signature.
  KeyUpdate relabeled{kOtherTag, upd.sig};
  EXPECT_FALSE(scheme_.verify_update(server_.pub, relabeled));
  // Signature by a different server.
  ServerKeyPair rogue = scheme_.server_keygen(rng_);
  KeyUpdate foreign = scheme_.issue_update(rogue, kTag);
  EXPECT_FALSE(scheme_.verify_update(server_.pub, foreign));
  // Random point.
  KeyUpdate junk{kTag, scheme_.hash_tag("junk")};
  EXPECT_FALSE(scheme_.verify_update(server_.pub, junk));
  // Infinity.
  KeyUpdate inf{kTag, ec::G1Point::infinity(scheme_.params().ctx())};
  EXPECT_FALSE(scheme_.verify_update(server_.pub, inf));
}

TEST_F(TreTest, UpdateIdenticalForAllUsers) {
  // The whole point of the scheme: the update depends only on (s, T).
  KeyUpdate u1 = scheme_.issue_update(server_, kTag);
  KeyUpdate u2 = scheme_.issue_update(server_, kTag);
  EXPECT_EQ(u1, u2);
}

// --- Basic scheme -------------------------------------------------------------

TEST_F(TreTest, EncryptDecryptRoundtrip) {
  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), msg());
}

TEST_F(TreTest, MessageSizesSweep) {
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  for (size_t n : {0u, 1u, 31u, 32u, 33u, 1000u, 65535u}) {
    Bytes m = rng_.bytes(n);
    Ciphertext ct = scheme_.encrypt(m, user_.pub, server_.pub, kTag, rng_);
    EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), m) << "size " << n;
  }
}

TEST_F(TreTest, WrongUpdateYieldsGarbage) {
  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate wrong = scheme_.issue_update(server_, kOtherTag);
  EXPECT_NE(scheme_.decrypt(ct, user_.a, wrong), msg());
}

TEST_F(TreTest, WrongPrivateKeyYieldsGarbage) {
  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  UserKeyPair eve = scheme_.user_keygen(server_.pub, rng_);
  EXPECT_NE(scheme_.decrypt(ct, eve.a, upd), msg());
}

TEST_F(TreTest, CiphertextsAreRandomized) {
  Ciphertext c1 = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  Ciphertext c2 = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  EXPECT_FALSE(c1.u == c2.u);
  EXPECT_NE(c1.v, c2.v);
}

TEST_F(TreTest, AnyFutureTagEncryptsWithoutServerData) {
  // Paper footnote 2: the sender never needs anything from the server for
  // any release time, however far in the future.
  KeyUpdate upd = scheme_.issue_update(server_, "9999-12-31T23:59:59Z");
  Ciphertext ct =
      scheme_.encrypt(msg(), user_.pub, server_.pub, "9999-12-31T23:59:59Z", rng_);
  EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), msg());
}

// --- FO (CCA) -------------------------------------------------------------------

TEST_F(TreTest, FoRoundtrip) {
  FoCiphertext ct = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  auto out = scheme_.decrypt_fo(ct, user_.a, upd, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg());
}

TEST_F(TreTest, FoRejectsTamperedBody) {
  FoCiphertext ct = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  ct.c_msg[0] ^= 1;
  EXPECT_FALSE(scheme_.decrypt_fo(ct, user_.a, upd, server_.pub).has_value());
}

TEST_F(TreTest, FoRejectsTamperedSigma) {
  FoCiphertext ct = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  ct.c_sigma[3] ^= 0x80;
  EXPECT_FALSE(scheme_.decrypt_fo(ct, user_.a, upd, server_.pub).has_value());
}

TEST_F(TreTest, FoRejectsSwappedU) {
  FoCiphertext c1 = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  FoCiphertext c2 = scheme_.encrypt_fo(msg("other"), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  FoCiphertext mixed{c2.u, c1.c_sigma, c1.c_msg};
  EXPECT_FALSE(scheme_.decrypt_fo(mixed, user_.a, upd, server_.pub).has_value());
}

TEST_F(TreTest, FoRejectsWrongUpdate) {
  FoCiphertext ct = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate wrong = scheme_.issue_update(server_, kOtherTag);
  EXPECT_FALSE(scheme_.decrypt_fo(ct, user_.a, wrong, server_.pub).has_value());
}

TEST_F(TreTest, FoEmptyMessage) {
  FoCiphertext ct = scheme_.encrypt_fo({}, user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  auto out = scheme_.decrypt_fo(ct, user_.a, upd, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

// --- REACT (CCA) ------------------------------------------------------------------

TEST_F(TreTest, ReactRoundtrip) {
  ReactCiphertext ct = scheme_.encrypt_react(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  auto out = scheme_.decrypt_react(ct, user_.a, upd);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg());
}

TEST_F(TreTest, ReactRejectsTampering) {
  ReactCiphertext ct = scheme_.encrypt_react(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  for (Bytes* field : {&ct.c_r, &ct.c_msg, &ct.mac}) {
    Bytes saved = *field;
    (*field)[0] ^= 1;
    EXPECT_FALSE(scheme_.decrypt_react(ct, user_.a, upd).has_value());
    *field = saved;
  }
  // Untampered again decrypts.
  EXPECT_TRUE(scheme_.decrypt_react(ct, user_.a, upd).has_value());
}

TEST_F(TreTest, ReactRejectsWrongKeyOrUpdate) {
  ReactCiphertext ct = scheme_.encrypt_react(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  KeyUpdate wrong = scheme_.issue_update(server_, kOtherTag);
  UserKeyPair eve = scheme_.user_keygen(server_.pub, rng_);
  EXPECT_FALSE(scheme_.decrypt_react(ct, user_.a, wrong).has_value());
  EXPECT_FALSE(scheme_.decrypt_react(ct, eve.a, upd).has_value());
}

// --- Key insulation (§5.3.3) -----------------------------------------------------

TEST_F(TreTest, EpochKeyDecrypts) {
  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EpochKey ek = scheme_.derive_epoch_key(user_.a, upd);
  EXPECT_EQ(ek.tag, kTag);
  EXPECT_EQ(scheme_.decrypt_with_epoch_key(ct, ek), msg());
}

TEST_F(TreTest, EpochKeyIsEpochBound) {
  // A compromised epoch key must not decrypt other epochs.
  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kOtherTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EpochKey ek = scheme_.derive_epoch_key(user_.a, upd);
  EXPECT_NE(scheme_.decrypt_with_epoch_key(ct, ek), msg());
}

TEST_F(TreTest, EpochKeyWithFo) {
  FoCiphertext ct = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EpochKey ek = scheme_.derive_epoch_key(user_.a, upd);
  auto out = scheme_.decrypt_fo_with_epoch_key(ct, ek, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg());
  // Cross-epoch use is rejected by the FO check.
  EpochKey other = scheme_.derive_epoch_key(user_.a, scheme_.issue_update(server_, kOtherTag));
  EXPECT_FALSE(scheme_.decrypt_fo_with_epoch_key(ct, other, server_.pub).has_value());
}

TEST_F(TreTest, EpochKeyMatchesDirectDecryption) {
  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EpochKey ek = scheme_.derive_epoch_key(user_.a, upd);
  EXPECT_EQ(scheme_.decrypt_with_epoch_key(ct, ek), scheme_.decrypt(ct, user_.a, upd));
}

// --- Server change (§5.3.4) -------------------------------------------------------

TEST_F(TreTest, ReboundKeyVerifiesAgainstCertifiedKey) {
  ServerKeyPair new_server = scheme_.server_keygen(rng_);
  UserPublicKey rebound = scheme_.rebind_user_key(user_.a, new_server.pub);
  EXPECT_TRUE(scheme_.verify_rebound_key(user_.pub.ag, server_.pub.g,
                                         new_server.pub, rebound));
  // And it is a fully functional key under the new server.
  Ciphertext ct = scheme_.encrypt(msg(), rebound, new_server.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(new_server, kTag);
  EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), msg());
}

TEST_F(TreTest, ReboundKeyFromImpostorRejected) {
  ServerKeyPair new_server = scheme_.server_keygen(rng_);
  UserKeyPair eve = scheme_.user_keygen(server_.pub, rng_);
  // Eve presents her own key as a rebinding of the victim's certified key.
  UserPublicKey forged = scheme_.rebind_user_key(eve.a, new_server.pub);
  EXPECT_FALSE(scheme_.verify_rebound_key(user_.pub.ag, server_.pub.g,
                                          new_server.pub, forged));
}

// --- Serialization ----------------------------------------------------------------

TEST_F(TreTest, AllArtifactsRoundtripThroughBytes) {
  const auto& p = scheme_.params();
  EXPECT_TRUE(ServerPublicKey::from_bytes(p, server_.pub.to_bytes()) == server_.pub);
  EXPECT_TRUE(UserPublicKey::from_bytes(p, user_.pub.to_bytes()) == user_.pub);

  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_TRUE(KeyUpdate::from_bytes(p, upd.to_bytes()) == upd);

  Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
  Ciphertext ct2 = Ciphertext::from_bytes(p, ct.to_bytes());
  EXPECT_EQ(scheme_.decrypt(ct2, user_.a, upd), msg());

  FoCiphertext fo = scheme_.encrypt_fo(msg(), user_.pub, server_.pub, kTag, rng_);
  FoCiphertext fo2 = FoCiphertext::from_bytes(p, fo.to_bytes());
  EXPECT_EQ(scheme_.decrypt_fo(fo2, user_.a, upd, server_.pub).value(), msg());

  ReactCiphertext re = scheme_.encrypt_react(msg(), user_.pub, server_.pub, kTag, rng_);
  ReactCiphertext re2 = ReactCiphertext::from_bytes(p, re.to_bytes());
  EXPECT_EQ(scheme_.decrypt_react(re2, user_.a, upd).value(), msg());
}

TEST_F(TreTest, DeserializationRejectsTruncation) {
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  Bytes enc = upd.to_bytes();
  const auto& p = scheme_.params();
  EXPECT_THROW(KeyUpdate::from_bytes(p, ByteSpan(enc.data(), enc.size() - 1)), Error);
  Bytes extended = enc;
  extended.push_back(0);
  EXPECT_THROW(KeyUpdate::from_bytes(p, extended), Error);
}

TEST_F(TreTest, DeserializationRejectsSmallSubgroupPoints) {
  // Build an on-curve point OUTSIDE the order-q subgroup (order divides
  // the cofactor 12r) by running the encoding map without cofactor
  // clearing, and smuggle it into a KeyUpdate wire image.
  const auto* curve = scheme_.params().ctx();
  const field::FpCtx* fp = curve->fp.get();
  ec::G1Point rogue;
  for (std::uint32_t i = 0;; ++i) {
    Bytes h = hashing::oracle_bytes("rogue", be32(i), 2 * fp->byte_len);
    field::Fp y = field::Fp::from_bytes_wide(fp, h);
    field::Fp x = (y.squared() - field::Fp::one(fp)).pow(curve->cube_root_exp);
    ec::G1Point candidate = ec::G1Point::make(curve, x, y);
    if (!candidate.in_subgroup()) {
      rogue = candidate;
      break;
    }
  }
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  KeyUpdate forged{upd.tag, rogue};
  Bytes wire = forged.to_bytes();
  EXPECT_THROW(KeyUpdate::from_bytes(scheme_.params(), wire), Error);
  // The raw EC layer still parses it (it IS on the curve) — the rejection
  // belongs to the protocol layer.
  EXPECT_EQ(ec::G1Point::from_bytes(curve, rogue.to_bytes_compressed()), rogue);
}

TEST_F(TreTest, UpdateWireSizeIsOneCompressedPoint) {
  // §5.3.1: the update is a single short signature.
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_EQ(upd.to_bytes().size(),
            2 + std::string(kTag).size() + scheme_.params().g1_compressed_bytes());
}

// --- Scalar-engine tuning and batch APIs --------------------------------------

TEST_F(TreTest, LegacyTuningInteroperatesWithFast) {
  // Ciphertexts are bit-identical across tunings given the same
  // randomness, and either scheme decrypts the other's output.
  TreScheme legacy(params::load("tre-toy-96"), Tuning::legacy());
  ServerKeyPair server = legacy.server_keygen(rng_);
  UserKeyPair user = legacy.user_keygen(server.pub, rng_);
  KeyUpdate upd = scheme_.issue_update(server, kTag);
  EXPECT_EQ(upd, legacy.issue_update(server, kTag));

  hashing::HmacDrbg rng_fast(to_bytes("tuning-interop"));
  hashing::HmacDrbg rng_legacy(to_bytes("tuning-interop"));
  Ciphertext fast_ct = scheme_.encrypt(msg(), user.pub, server.pub, kTag, rng_fast);
  Ciphertext legacy_ct = legacy.encrypt(msg(), user.pub, server.pub, kTag, rng_legacy);
  EXPECT_EQ(fast_ct.to_bytes(), legacy_ct.to_bytes());
  EXPECT_EQ(legacy.decrypt(fast_ct, user.a, upd), msg());
  EXPECT_EQ(scheme_.decrypt(legacy_ct, user.a, upd), msg());

  // Same interop for the CCA variants.
  hashing::HmacDrbg rf2(to_bytes("tuning-fo")), rl2(to_bytes("tuning-fo"));
  FoCiphertext fo_fast = scheme_.encrypt_fo(msg(), user.pub, server.pub, kTag, rf2);
  FoCiphertext fo_legacy = legacy.encrypt_fo(msg(), user.pub, server.pub, kTag, rl2);
  EXPECT_EQ(fo_fast.to_bytes(), fo_legacy.to_bytes());
  EXPECT_EQ(legacy.decrypt_fo(fo_fast, user.a, upd, server.pub), msg());
  EXPECT_EQ(scheme_.decrypt_fo(fo_legacy, user.a, upd, server.pub), msg());
}

TEST_F(TreTest, EncryptBatchMatchesSequentialEncrypt) {
  std::vector<Bytes> msgs;
  for (int i = 0; i < 8; ++i) msgs.push_back(to_bytes("batch message " + std::to_string(i)));

  // Identical DRBG streams: the batch must reproduce the sequential
  // ciphertexts byte for byte.
  hashing::HmacDrbg rng_seq(to_bytes("batch-rng"));
  hashing::HmacDrbg rng_batch(to_bytes("batch-rng"));
  std::vector<Ciphertext> expected;
  for (const Bytes& m : msgs) {
    expected.push_back(scheme_.encrypt(m, user_.pub, server_.pub, kTag, rng_seq));
  }
  std::vector<Ciphertext> got =
      scheme_.encrypt_batch(msgs, user_.pub, server_.pub, kTag, rng_batch);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].to_bytes(), expected[i].to_bytes()) << "message #" << i;
  }

  // And every batch ciphertext decrypts.
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(scheme_.decrypt(got[i], user_.a, upd), msgs[i]);
  }
}

TEST_F(TreTest, EncryptBatchLegacyTuningAgrees) {
  TreScheme legacy(params::load("tre-toy-96"), Tuning::legacy());
  std::vector<Bytes> msgs = {msg("one"), msg("two"), msg("three")};
  hashing::HmacDrbg ra(to_bytes("batch-legacy")), rb(to_bytes("batch-legacy"));
  std::vector<Ciphertext> fast =
      scheme_.encrypt_batch(msgs, user_.pub, server_.pub, kTag, ra);
  std::vector<Ciphertext> slow =
      legacy.encrypt_batch(msgs, user_.pub, server_.pub, kTag, rb);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].to_bytes(), slow[i].to_bytes());
  }
}

TEST_F(TreTest, EncryptBatchEmptyAndKeyCheck) {
  EXPECT_TRUE(
      scheme_.encrypt_batch({}, user_.pub, server_.pub, kTag, rng_).empty());
  UserKeyPair other = scheme_.user_keygen(server_.pub, rng_);
  UserPublicKey forged{user_.pub.ag, other.pub.asg};
  std::vector<Bytes> msgs = {msg()};
  EXPECT_THROW(scheme_.encrypt_batch(msgs, forged, server_.pub, kTag, rng_,
                                     KeyCheck::kVerify),
               Error);
}

TEST_F(TreTest, IssueUpdatesMatchesSingleIssue) {
  std::vector<std::string> tags;
  for (int i = 0; i < 6; ++i) tags.push_back("2005-06-06T09:00:0" + std::to_string(i) + "Z");
  std::vector<KeyUpdate> bulk = scheme_.issue_updates(server_, tags, 2);
  ASSERT_EQ(bulk.size(), tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(bulk[i], scheme_.issue_update(server_, tags[i]));
    EXPECT_TRUE(scheme_.verify_update(server_.pub, bulk[i]));
  }
}

TEST_F(TreTest, RepeatedTagUsesConsistentCachedValues) {
  // Exercise the memoized tag hash / pair base / Miller lines across many
  // calls under one tag and across a second tag.
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  KeyUpdate other = scheme_.issue_update(server_, kOtherTag);
  for (int i = 0; i < 3; ++i) {
    Ciphertext ct = scheme_.encrypt(msg(), user_.pub, server_.pub, kTag, rng_);
    EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), msg());
    EXPECT_NE(scheme_.decrypt(ct, user_.a, other), msg());
  }
}

// --- Cross-parameter-set sweep ------------------------------------------------
// The full matrix runs on the toy curve above; this suite proves the
// protocol at every embedded security level.

class TreParamSweep : public ::testing::TestWithParam<const char*> {
 protected:
  TreParamSweep()
      : scheme_(params::load(GetParam())),
        rng_(to_bytes(std::string("sweep-") + GetParam())),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair server_;
  UserKeyPair user_;
};

TEST_P(TreParamSweep, FullProtocolRoundtrip) {
  EXPECT_TRUE(scheme_.verify_user_public_key(server_.pub, user_.pub));
  Bytes msg = rng_.bytes(100);
  Ciphertext ct = scheme_.encrypt(msg, user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_TRUE(scheme_.verify_update(server_.pub, upd));
  EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), msg);
  // Wrong update still yields garbage at every level.
  KeyUpdate wrong = scheme_.issue_update(server_, kOtherTag);
  EXPECT_NE(scheme_.decrypt(ct, user_.a, wrong), msg);
}

TEST_P(TreParamSweep, FoRoundtripAndRejection) {
  Bytes msg = rng_.bytes(64);
  FoCiphertext ct = scheme_.encrypt_fo(msg, user_.pub, server_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  auto out = scheme_.decrypt_fo(ct, user_.a, upd, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
  ct.c_msg[0] ^= 1;
  EXPECT_FALSE(scheme_.decrypt_fo(ct, user_.a, upd, server_.pub).has_value());
}

TEST_P(TreParamSweep, WireRoundtrip) {
  KeyUpdate upd = scheme_.issue_update(server_, kTag);
  EXPECT_TRUE(KeyUpdate::from_bytes(scheme_.params(), upd.to_bytes()) == upd);
  EXPECT_TRUE(UserPublicKey::from_bytes(scheme_.params(), user_.pub.to_bytes()) ==
              user_.pub);
}

INSTANTIATE_TEST_SUITE_P(AllParamSets, TreParamSweep,
                         ::testing::Values("tre-toy-96", "tre-512", "tre-768"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace tre::core
