// Unit tests for common byte utilities.
#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tre {
namespace {

TEST(Bytes, HexRoundtrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), Error);   // odd length
  EXPECT_THROW(from_hex("zz"), Error);    // non-hex
}

TEST(Bytes, Concat) {
  Bytes a = {1, 2};
  Bytes b = {};
  Bytes c = {3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, XorInvolution) {
  Bytes a = from_hex("00ff8811");
  Bytes k = from_hex("a5a5a5a5");
  EXPECT_EQ(xor_bytes(xor_bytes(a, k), k), a);
}

TEST(Bytes, XorSizeMismatchThrows) {
  EXPECT_THROW(xor_bytes(Bytes{1}, Bytes{1, 2}), Error);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(from_hex("aabb"), from_hex("aabb")));
  EXPECT_FALSE(ct_equal(from_hex("aabb"), from_hex("aabc")));
  EXPECT_FALSE(ct_equal(from_hex("aabb"), from_hex("aa")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, SecureWipe) {
  Bytes secret = {1, 2, 3, 4};
  secure_wipe(secret);
  EXPECT_EQ(secret, (Bytes{0, 0, 0, 0}));
}

TEST(Bytes, BigEndianCounters) {
  EXPECT_EQ(to_hex(be32(0x01020304)), "01020304");
  EXPECT_EQ(to_hex(be64(0x0102030405060708ull)), "0102030405060708");
  EXPECT_EQ(to_hex(be64(1)), "0000000000000001");
}

TEST(Bytes, ToBytesFromString) {
  EXPECT_EQ(to_bytes("AB"), (Bytes{0x41, 0x42}));
  EXPECT_TRUE(to_bytes("").empty());
}

}  // namespace
}  // namespace tre
