// §5.3.5 multi-server TRE: all-N trust distribution.
#include "core/multiserver.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::core {
namespace {

constexpr const char* kTag = "2005-06-06T09:00:00Z";

class MultiServerTest : public ::testing::TestWithParam<size_t> {
 protected:
  MultiServerTest()
      : mstre_(params::load("tre-toy-96")),
        scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("multiserver-tests")) {
    for (size_t i = 0; i < GetParam(); ++i) {
      servers_.push_back(scheme_.server_keygen(rng_));
      server_pubs_.push_back(servers_.back().pub);
    }
    a_ = params::random_scalar(mstre_.params(), rng_);
    user_ = mstre_.user_key(a_, server_pubs_);
  }

  std::vector<KeyUpdate> all_updates(std::string_view tag) {
    std::vector<KeyUpdate> updates;
    for (const auto& s : servers_) updates.push_back(scheme_.issue_update(s, tag));
    return updates;
  }

  MultiServerTre mstre_;
  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  std::vector<ServerKeyPair> servers_;
  std::vector<ServerPublicKey> server_pubs_;
  Scalar a_;
  MultiServerUserKey user_;
};

TEST_P(MultiServerTest, UserKeyVerifies) {
  EXPECT_TRUE(mstre_.verify_user_key(user_, server_pubs_));
}

TEST_P(MultiServerTest, ForgedPartRejected) {
  MultiServerUserKey forged = user_;
  forged.parts[0] = forged.parts[0].doubled();
  EXPECT_FALSE(mstre_.verify_user_key(forged, server_pubs_));
}

TEST_P(MultiServerTest, RoundtripWithAllUpdates) {
  Bytes msg = to_bytes("N-of-N trust");
  MultiServerCiphertext ct = mstre_.encrypt(msg, user_, server_pubs_, kTag, rng_);
  EXPECT_EQ(ct.us.size(), GetParam());
  EXPECT_EQ(mstre_.decrypt(ct, a_, all_updates(kTag)), msg);
}

TEST_P(MultiServerTest, OneStaleUpdateBreaksDecryption) {
  if (GetParam() < 2) GTEST_SKIP();
  Bytes msg = to_bytes("N-of-N trust");
  MultiServerCiphertext ct = mstre_.encrypt(msg, user_, server_pubs_, kTag, rng_);
  auto updates = all_updates(kTag);
  // Server 0 colludes early for a different tag: still useless.
  updates[0] = scheme_.issue_update(servers_[0], "1999-01-01T00:00:00Z");
  EXPECT_THROW(mstre_.decrypt(ct, a_, updates), Error);  // tag mismatch detected
}

TEST_P(MultiServerTest, MissingUpdateCountRejected) {
  Bytes msg = to_bytes("N-of-N trust");
  MultiServerCiphertext ct = mstre_.encrypt(msg, user_, server_pubs_, kTag, rng_);
  auto updates = all_updates(kTag);
  updates.pop_back();
  EXPECT_THROW(mstre_.decrypt(ct, a_, updates), Error);
}

TEST_P(MultiServerTest, WrongSecretYieldsGarbage) {
  Bytes msg = to_bytes("N-of-N trust");
  MultiServerCiphertext ct = mstre_.encrypt(msg, user_, server_pubs_, kTag, rng_);
  Scalar eve = params::random_scalar(mstre_.params(), rng_);
  EXPECT_NE(mstre_.decrypt(ct, eve, all_updates(kTag)), msg);
}

TEST_P(MultiServerTest, SerializationRoundtrip) {
  Bytes msg = to_bytes("wire");
  MultiServerCiphertext ct = mstre_.encrypt(msg, user_, server_pubs_, kTag, rng_);
  auto ct2 = MultiServerCiphertext::from_bytes(mstre_.params(), ct.to_bytes());
  EXPECT_EQ(mstre_.decrypt(ct2, a_, all_updates(kTag)), msg);
  auto user2 = MultiServerUserKey::from_bytes(mstre_.params(), user_.to_bytes());
  EXPECT_TRUE(mstre_.verify_user_key(user2, server_pubs_));
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, MultiServerTest, ::testing::Values(1, 2, 3, 5),
                         ::testing::PrintToStringParamName());

TEST(MultiServerEdge, RejectsEmptyServerList) {
  MultiServerTre mstre(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("edge"));
  Scalar a = params::random_scalar(mstre.params(), rng);
  EXPECT_THROW(mstre.user_key(a, {}), Error);
}

}  // namespace
}  // namespace tre::core
