// BLS12-381 parity with the 2005 curve: the SAME generic core must give
// the same guarantees on the modern backend — all three seal modes
// roundtrip, FO/REACT tamper rejection holds point-for-point, the
// non-throwing wire codecs shrug off a garbage corpus, and bytes framed
// for one backend are cleanly rejected (nullopt, never a crash) by the
// other. Reference pairings cost tens of ms each, so fixture state is
// built once per suite and every test is pairing-frugal.
#include <gtest/gtest.h>

#include "bls12/tre381.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre {
namespace {

using core::KeyCheck;
using core::Mode;

constexpr const char* kTag = "2030-01-01T00:00:00Z";
constexpr const char* kMsg = "parity across twenty years of curves";

class Tre381ParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hashing::HmacDrbg rng(to_bytes("tre381-parity"));
    scheme_ = new bls12::Tre381Scheme(bls12::make_tre381());
    server_ = new bls12::ServerKey381(scheme_->server_keygen(rng));
    user_ = new bls12::UserKey381(scheme_->user_keygen(server_->pub, rng));
    update_ = new bls12::Update381(scheme_->issue_update(*server_, kTag));
  }
  static void TearDownTestSuite() {
    delete update_;
    delete user_;
    delete server_;
    delete scheme_;
    update_ = nullptr;
    user_ = nullptr;
    server_ = nullptr;
    scheme_ = nullptr;
  }

  Tre381ParityTest() : rng_(to_bytes("tre381-parity-case")) {}

  static bls12::Tre381Scheme* scheme_;
  static bls12::ServerKey381* server_;
  static bls12::UserKey381* user_;
  static bls12::Update381* update_;
  hashing::HmacDrbg rng_;
};

bls12::Tre381Scheme* Tre381ParityTest::scheme_ = nullptr;
bls12::ServerKey381* Tre381ParityTest::server_ = nullptr;
bls12::UserKey381* Tre381ParityTest::user_ = nullptr;
bls12::Update381* Tre381ParityTest::update_ = nullptr;

TEST_F(Tre381ParityTest, SealOpenRoundtripsAllModes) {
  Bytes msg = to_bytes(kMsg);
  for (Mode mode : {Mode::kBasic, Mode::kFo, Mode::kReact}) {
    bls12::SealedCiphertext381 sc =
        scheme_->seal(mode, msg, user_->pub, server_->pub, kTag, rng_,
                      KeyCheck::kSkip);
    EXPECT_EQ(sc.mode(), mode);
    auto out = scheme_->open(sc, user_->a, *update_, server_->pub);
    ASSERT_TRUE(out.has_value()) << core::mode_name(mode);
    EXPECT_EQ(*out, msg) << core::mode_name(mode);
  }
}

TEST_F(Tre381ParityTest, WrongUpdateFailsTimeLock) {
  // The time lock itself: an update for a DIFFERENT instant must not
  // open an FO ciphertext (basic mode would return garbage bytes; the
  // CCA modes detect and reject).
  bls12::Update381 early = scheme_->issue_update(*server_, "2029-01-01T00:00:00Z");
  Bytes msg = to_bytes(kMsg);
  auto ct = scheme_->encrypt_fo(msg, user_->pub, server_->pub, kTag, rng_,
                                KeyCheck::kSkip);
  EXPECT_FALSE(scheme_->decrypt_fo(ct, user_->a, early, server_->pub).has_value());
  ASSERT_TRUE(scheme_->decrypt_fo(ct, user_->a, *update_, server_->pub).has_value());
}

TEST_F(Tre381ParityTest, FoTamperMatrix) {
  Bytes msg = to_bytes(kMsg);
  auto ct = scheme_->encrypt_fo(msg, user_->pub, server_->pub, kTag, rng_,
                                KeyCheck::kSkip);
  ASSERT_TRUE(scheme_->decrypt_fo(ct, user_->a, *update_, server_->pub).has_value());

  {
    // Header point swapped for another ciphertext's header.
    auto other = scheme_->encrypt_fo(msg, user_->pub, server_->pub, kTag, rng_,
                                     KeyCheck::kSkip);
    auto tampered = ct;
    tampered.u = other.u;
    EXPECT_FALSE(
        scheme_->decrypt_fo(tampered, user_->a, *update_, server_->pub).has_value());
  }
  {
    auto tampered = ct;
    tampered.c_sigma[0] ^= 0x01;
    EXPECT_FALSE(
        scheme_->decrypt_fo(tampered, user_->a, *update_, server_->pub).has_value());
  }
  {
    auto tampered = ct;
    tampered.c_msg.back() ^= 0x80;
    EXPECT_FALSE(
        scheme_->decrypt_fo(tampered, user_->a, *update_, server_->pub).has_value());
  }
}

TEST_F(Tre381ParityTest, ReactTamperMatrix) {
  Bytes msg = to_bytes(kMsg);
  auto ct = scheme_->encrypt_react(msg, user_->pub, server_->pub, kTag, rng_,
                                   KeyCheck::kSkip);
  ASSERT_TRUE(scheme_->decrypt_react(ct, user_->a, *update_).has_value());

  for (int field = 0; field < 3; ++field) {
    auto tampered = ct;
    if (field == 0) {
      tampered.c_r[0] ^= 0x01;
    } else if (field == 1) {
      tampered.c_msg[0] ^= 0x01;
    } else {
      tampered.mac.back() ^= 0x01;
    }
    EXPECT_FALSE(scheme_->decrypt_react(tampered, user_->a, *update_).has_value())
        << "field " << field;
  }
}

TEST_F(Tre381ParityTest, TryFromBytesGarbageCorpus) {
  const bls12::Bls12Ctx& ctx = scheme_->params();
  hashing::HmacDrbg noise(to_bytes("tre381-garbage"));
  bls12::Update381 upd = *update_;
  Bytes good_upd = upd.to_bytes();
  bls12::SealedCiphertext381 sc = scheme_->seal(Mode::kReact, to_bytes(kMsg),
                                               user_->pub, server_->pub, kTag,
                                               rng_, KeyCheck::kSkip);
  Bytes good_sc = sc.to_bytes();

  // Empty, truncations, trailing junk, bit-flipped point bytes, and
  // same-length noise: every one must come back nullopt, never throw.
  EXPECT_FALSE(bls12::Update381::try_from_bytes(ctx, Bytes{}).has_value());
  EXPECT_FALSE(bls12::SealedCiphertext381::try_from_bytes(ctx, Bytes{}).has_value());
  for (size_t cut : {size_t{1}, good_upd.size() / 2, good_upd.size() - 1}) {
    Bytes truncated(good_upd.begin(), good_upd.begin() + cut);
    EXPECT_FALSE(bls12::Update381::try_from_bytes(ctx, truncated).has_value())
        << "cut " << cut;
  }
  {
    Bytes trailing = good_upd;
    trailing.push_back(0x00);
    EXPECT_FALSE(bls12::Update381::try_from_bytes(ctx, trailing).has_value());
  }
  {
    // Corrupt the compressed G1 x-coordinate: off-curve / bad-prefix
    // encodings die inside point decoding.
    Bytes flipped = good_upd;
    flipped.back() ^= 0x01;
    flipped[flipped.size() - bls12::Bls381Backend::gu_wire_bytes(ctx)] ^= 0xff;
    EXPECT_FALSE(bls12::Update381::try_from_bytes(ctx, flipped).has_value());
  }
  for (int i = 0; i < 4; ++i) {
    Bytes junk = noise.bytes(good_upd.size());
    EXPECT_FALSE(bls12::Update381::try_from_bytes(ctx, junk).has_value());
    Bytes junk_sc = noise.bytes(good_sc.size());
    EXPECT_FALSE(bls12::SealedCiphertext381::try_from_bytes(ctx, junk_sc).has_value());
  }
  {
    Bytes bad_mode = good_sc;
    bad_mode[0] = 0x7f;  // unknown mode byte
    EXPECT_FALSE(bls12::SealedCiphertext381::try_from_bytes(ctx, bad_mode).has_value());
  }

  // Sanity: the untampered encodings still parse.
  EXPECT_TRUE(bls12::Update381::try_from_bytes(ctx, good_upd).has_value());
  EXPECT_TRUE(bls12::SealedCiphertext381::try_from_bytes(ctx, good_sc).has_value());
}

TEST_F(Tre381ParityTest, CrossBackendBytesRejectedCleanly) {
  // A 381 artifact fed to a type-1 context (and vice versa) must fail at
  // the wire codec — nullopt, no exception, no group-arithmetic crash.
  auto toy_params = params::load("tre-toy-96");
  core::TreScheme toy(toy_params);
  hashing::HmacDrbg rng(to_bytes("cross-backend"));
  core::ServerKeyPair toy_server = toy.server_keygen(rng);
  core::UserKeyPair toy_user = toy.user_keygen(toy_server.pub, rng);
  core::KeyUpdate toy_update = toy.issue_update(toy_server, kTag);

  const bls12::Bls12Ctx& ctx = scheme_->params();

  // 381 → type-1.
  EXPECT_FALSE(
      core::KeyUpdate::try_from_bytes(*toy_params, update_->to_bytes()).has_value());
  bls12::SealedCiphertext381 sc381 = scheme_->seal(Mode::kFo, to_bytes(kMsg),
                                                  user_->pub, server_->pub, kTag,
                                                  rng_, KeyCheck::kSkip);
  EXPECT_FALSE(
      core::SealedCiphertext::try_from_bytes(*toy_params, sc381.to_bytes()).has_value());

  // type-1 → 381.
  EXPECT_FALSE(
      bls12::Update381::try_from_bytes(ctx, toy_update.to_bytes()).has_value());
  core::SealedCiphertext sc512 = toy.seal(Mode::kFo, to_bytes(kMsg), toy_user.pub,
                                          toy_server.pub, kTag, rng);
  EXPECT_FALSE(
      bls12::SealedCiphertext381::try_from_bytes(ctx, sc512.to_bytes()).has_value());
}

TEST_F(Tre381ParityTest, EpochKeyDecryptsWithoutLongTermSecret) {
  Bytes msg = to_bytes(kMsg);
  auto ct = scheme_->encrypt(msg, user_->pub, server_->pub, kTag, rng_,
                             KeyCheck::kSkip);
  bls12::EpochKey381 ek = scheme_->derive_epoch_key(user_->a, *update_);
  EXPECT_EQ(ek.tag, kTag);
  EXPECT_EQ(scheme_->decrypt_with_epoch_key(ct, ek), msg);
}

}  // namespace
}  // namespace tre
