#!/bin/sh
# End-to-end integration test of the tre_cli tool, registered with ctest.
# $1 = path to the tre_cli binary.
set -e
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR"

"$CLI" params >/dev/null

# Plain keys, FO roundtrip.
"$CLI" server-keygen --set tre-toy-96 --key server.key --pub server.pub
"$CLI" user-keygen --server-pub server.pub --key user.key --pub user.pub
printf 'open at the appointed hour' > msg.txt
"$CLI" encrypt --user-pub user.pub --server-pub server.pub \
  --tag "2031-05-05T05:05:05Z" --in msg.txt --out ct.bin --mode fo
"$CLI" issue --server-key server.key --tag "2031-05-05T05:05:05Z" --out update.bin
"$CLI" verify-update --server-pub server.pub --update update.bin >/dev/null
"$CLI" decrypt --user-key user.key --server-pub server.pub --update update.bin \
  --in ct.bin --out out.txt --mode fo
cmp msg.txt out.txt

# Every mode roundtrips.
for mode in basic react; do
  "$CLI" encrypt --user-pub user.pub --server-pub server.pub \
    --tag "2031-05-05T05:05:05Z" --in msg.txt --out "ct-$mode.bin" --mode "$mode"
  "$CLI" decrypt --user-key user.key --server-pub server.pub --update update.bin \
    --in "ct-$mode.bin" --out "out-$mode.txt" --mode "$mode"
  cmp msg.txt "out-$mode.txt"
done

# Sealed (mode-tagged) wire: decrypt needs no --mode, the file says.
for mode in sealed sealed-basic sealed-fo sealed-react; do
  "$CLI" encrypt --user-pub user.pub --server-pub server.pub \
    --tag "2031-05-05T05:05:05Z" --in msg.txt --out "ct-$mode.bin" --mode "$mode"
  "$CLI" decrypt --user-key user.key --server-pub server.pub --update update.bin \
    --in "ct-$mode.bin" --out "out-$mode.txt"
  cmp msg.txt "out-$mode.txt"
done

# --metrics dumps a registry snapshot JSON (all-zero counters when the
# build compiled the probes out — the flag must still work).
"$CLI" decrypt --user-key user.key --server-pub server.pub --update update.bin \
  --in ct-sealed.bin --out out-m.txt --metrics metrics.json
cmp msg.txt out-m.txt
grep -q '"metrics_enabled"' metrics.json
grep -q '"counters"' metrics.json
"$CLI" params --metrics - | grep -q '"metrics_enabled"'

# The wrong update must NOT decrypt under FO.
"$CLI" issue --server-key server.key --tag "2031-01-01T00:00:00Z" --out early.bin
if "$CLI" decrypt --user-key user.key --server-pub server.pub --update early.bin \
  --in ct.bin --out bad.txt --mode fo 2>/dev/null; then
  echo "FAIL: decrypted with the wrong update" >&2
  exit 1
fi

# Password-protected keys.
"$CLI" server-keygen --set tre-toy-96 --key sealed.key --pub sealed.pub --password pw1
"$CLI" issue --server-key sealed.key --password pw1 --tag T --out u.bin
if "$CLI" issue --server-key sealed.key --password nope --tag T --out u.bin 2>/dev/null; then
  echo "FAIL: wrong password accepted" >&2
  exit 1
fi

# File-kind confusion is rejected.
if "$CLI" verify-update --server-pub update.bin --update server.pub 2>/dev/null; then
  echo "FAIL: swapped file kinds accepted" >&2
  exit 1
fi

# ---- BLS12-381 backend: same commands, same flow, modern curve. -------
"$CLI" params | grep -q 'bls12-381'
"$CLI" server-keygen --backend bls381 --key server381.key --pub server381.pub
"$CLI" user-keygen --server-pub server381.pub --key user381.key --pub user381.pub
"$CLI" encrypt --user-pub user381.pub --server-pub server381.pub \
  --tag "2031-05-05T05:05:05Z" --in msg.txt --out ct381.bin --mode sealed
"$CLI" issue --server-key server381.key --tag "2031-05-05T05:05:05Z" --out update381.bin
"$CLI" verify-update --server-pub server381.pub --update update381.bin >/dev/null
"$CLI" decrypt --user-key user381.key --server-pub server381.pub \
  --update update381.bin --in ct381.bin --out out381.txt
cmp msg.txt out381.txt

# An explicit --backend is cross-checked against the files.
"$CLI" issue --backend bls381 --server-key server381.key --tag T381 --out u381.bin
if "$CLI" issue --backend tre512 --server-key server381.key --tag T381 \
  --out u381b.bin 2>/dev/null; then
  echo "FAIL: --backend tre512 accepted bls381 key file" >&2
  exit 1
fi

# Cross-backend artifacts are rejected before any cryptography runs.
if "$CLI" verify-update --server-pub server381.pub --update update.bin 2>/dev/null; then
  echo "FAIL: type-1 update accepted by bls381 server key" >&2
  exit 1
fi
if "$CLI" decrypt --user-key user.key --server-pub server.pub --update update.bin \
  --in ct381.bin --out cross.txt 2>/dev/null; then
  echo "FAIL: bls381 ciphertext decrypted with type-1 keys" >&2
  exit 1
fi

# ---- Hybrid time-lock fallback. ---------------------------------------
# Both lanes must open the same envelope: the server lane via decrypt,
# the fallback lane via solve — bit-identical plaintexts. Tiny modulus
# and squaring count keep this fast; production dials are far larger.
"$CLI" encrypt --user-pub user.pub --server-pub server.pub \
  --tag "2031-05-05T05:05:05Z" --in msg.txt --out ct-hybrid.bin \
  --fallback 3000 --fallback-modulus-bits 256
"$CLI" decrypt --user-key user.key --server-pub server.pub --update update.bin \
  --in ct-hybrid.bin --out out-hybrid-server.txt
cmp msg.txt out-hybrid-server.txt

# Fallback lane, interrupted: a small budget must exit 3 and leave a
# checkpoint; the resumed run finishes and matches.
set +e
"$CLI" solve --in ct-hybrid.bin --out out-hybrid-solve.txt \
  --checkpoint ck.bin --budget 1000 --checkpoint-every 400
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "FAIL: exhausted solve budget should exit 3 (got $rc)" >&2
  exit 1
fi
test -f ck.bin
"$CLI" solve --in ct-hybrid.bin --out out-hybrid-solve.txt \
  --checkpoint ck.bin --checkpoint-every 400 | grep -q 'resumed from'
cmp msg.txt out-hybrid-solve.txt

# A corrupted checkpoint is rejected, not silently resumed (same size,
# scrambled contents).
{ tail -c 308 ck.bin; head -c 308 ck.bin; } > ck-bad.bin
if "$CLI" solve --in ct-hybrid.bin --out bad.txt --checkpoint ck-bad.bin \
  --budget 1 2>/dev/null; then
  echo "FAIL: corrupted checkpoint accepted" >&2
  exit 1
fi

# Hybrid on the bls381 backend too.
"$CLI" encrypt --user-pub user381.pub --server-pub server381.pub \
  --tag "2031-05-05T05:05:05Z" --in msg.txt --out ct381-hybrid.bin \
  --fallback 500 --fallback-modulus-bits 256
"$CLI" solve --in ct381-hybrid.bin --out out381-solve.txt
cmp msg.txt out381-solve.txt

# ---- Power-on self-tests. ---------------------------------------------
# Clean suite passes; an injected corruption makes the command fail.
# (With TRE_SELFTEST=OFF builds the command still reports and passes.)
"$CLI" selftest | grep -q 'selftest:'
if TRE_SELFTEST_FAULT=sha256 "$CLI" selftest >/dev/null 2>&1; then
  echo "FAIL: injected sha256 corruption not detected" >&2
  exit 1
fi
if TRE_SELFTEST_FAULT=not-a-kat "$CLI" selftest >/dev/null 2>&1; then
  echo "FAIL: unknown fault name should fail closed" >&2
  exit 1
fi

# ---- Batch-verified catch-up over a live daemon. ----------------------
# serve issues three past instants; fetch --from/--to replays the archive
# through kGetRange, verifies the page as one randomized batch, and keeps
# only the requested window. The fetched envelopes must be bit-identical
# to locally issued ones (golden single-item identity survives batching).
"$CLI" serve --pub server.pub --server-key server.key \
  --tags "2005-06-06T09:00Z,2005-06-06T09:01Z,2005-06-06T09:02Z" \
  --port 0 --port-file serve.port &
SERVE_PID=$!
i=0
while [ ! -s serve.port ] && [ $i -lt 50 ]; do
  kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: serve died" >&2; exit 1; }
  sleep 0.1
  i=$((i + 1))
done
test -s serve.port
PORT=$(cat serve.port)

mkdir catchup
"$CLI" fetch --server-pub server.pub --remote "127.0.0.1:$PORT" \
  --from "2005-06-06T09:01Z" --to "2005-06-06T09:02Z" --out-dir catchup \
  | grep -q '2 updates fetched and VERIFIED'
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

test -f catchup/update-000000.bin
test -f catchup/update-000001.bin
test ! -f catchup/update-000002.bin  # 09:00Z lies outside the window
for f in catchup/update-000000.bin catchup/update-000001.bin; do
  "$CLI" verify-update --server-pub server.pub --update "$f" >/dev/null
done
"$CLI" issue --server-key server.key --tag "2005-06-06T09:01Z" --out issued-0901.bin
"$CLI" issue --server-key server.key --tag "2005-06-06T09:02Z" --out issued-0902.bin
cmp catchup/update-000000.bin issued-0901.bin
cmp catchup/update-000001.bin issued-0902.bin

echo "cli roundtrip ok"
