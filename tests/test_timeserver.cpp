// Time-server infrastructure: canonical time strings, simulated timeline,
// passive server, archive catch-up and lossy broadcast.
#include "timeserver/timeserver.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::server {
namespace {

// --- TimeSpec -----------------------------------------------------------------

TEST(TimeSpec, CanonicalFormats) {
  std::int64_t t = 1118048445;  // 2005-06-06T09:00:45Z
  EXPECT_EQ(TimeSpec::from_unix(t, Granularity::kSecond).canonical(),
            "2005-06-06T09:00:45Z");
  EXPECT_EQ(TimeSpec::from_unix(t, Granularity::kMinute).canonical(),
            "2005-06-06T09:00Z");
  EXPECT_EQ(TimeSpec::from_unix(t, Granularity::kHour).canonical(),
            "2005-06-06T09Z");
  EXPECT_EQ(TimeSpec::from_unix(t, Granularity::kDay).canonical(), "2005-06-06");
}

TEST(TimeSpec, TruncatesToGranule) {
  std::int64_t t = 1118048445;
  EXPECT_EQ(TimeSpec::from_unix(t, Granularity::kHour).unix_seconds() % 3600, 0);
  EXPECT_EQ(TimeSpec::from_unix(t, Granularity::kDay).unix_seconds() % 86400, 0);
}

TEST(TimeSpec, ParseRoundtrip) {
  for (const char* text : {"2005-06-06T09:00:45Z", "2005-06-06T09:00Z",
                           "2005-06-06T09Z", "2005-06-06", "1970-01-01",
                           "2038-01-19T03:14:08Z", "9999-12-31T23:59:59Z"}) {
    auto ts = TimeSpec::parse(text);
    ASSERT_TRUE(ts.has_value()) << text;
    EXPECT_EQ(ts->canonical(), text);
  }
}

TEST(TimeSpec, ParseRejectsMalformed) {
  for (const char* text :
       {"", "2005", "2005-13-01", "2005-06-32", "2005-06-06T24Z",
        "2005-06-06T08:60Z", "2005-06-06T08:20:60Z", "2005-06-06 08:20:45Z",
        "2005-06-06T08:20:45", "2005-02-30", "garbage"}) {
    EXPECT_FALSE(TimeSpec::parse(text).has_value()) << text;
  }
}

TEST(TimeSpec, EpochAndLeapYearMath) {
  EXPECT_EQ(TimeSpec::from_unix(0, Granularity::kSecond).canonical(),
            "1970-01-01T00:00:00Z");
  // 2004-02-29 existed (leap year).
  auto leap = TimeSpec::parse("2004-02-29");
  ASSERT_TRUE(leap.has_value());
  EXPECT_EQ(leap->next().canonical(), "2004-03-01");
  // 2005 was not a leap year.
  EXPECT_FALSE(TimeSpec::parse("2005-02-29").has_value());
}

TEST(TimeSpec, NextPrevStepByGranule) {
  auto ts = *TimeSpec::parse("2005-06-06T09:00Z");
  EXPECT_EQ(ts.next().canonical(), "2005-06-06T09:01Z");
  EXPECT_EQ(ts.prev().canonical(), "2005-06-06T08:59Z");
  EXPECT_LT(ts, ts.next());
  EXPECT_EQ(ts.next().prev(), ts);
  // Day rollover.
  auto eod = *TimeSpec::parse("2005-06-06T23:59:59Z");
  EXPECT_EQ(eod.next().canonical(), "2005-06-07T00:00:00Z");
}

// --- Timeline ------------------------------------------------------------------

TEST(Timeline, FiresEventsInOrder) {
  Timeline tl(100);
  std::vector<int> fired;
  tl.schedule(10, [&] { fired.push_back(2); });
  tl.schedule(5, [&] { fired.push_back(1); });
  tl.schedule(10, [&] { fired.push_back(3); });  // same instant: FIFO
  tl.advance_to(200);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(tl.now(), 200);
  EXPECT_EQ(tl.pending_events(), 0u);
}

TEST(Timeline, EventsMayScheduleEvents) {
  Timeline tl;
  int count = 0;
  std::function<void()> recur = [&] {
    if (++count < 5) tl.schedule(10, recur);
  };
  tl.schedule(0, recur);
  tl.advance_to(100);
  EXPECT_EQ(count, 5);
}

TEST(Timeline, PartialAdvanceLeavesFutureEvents) {
  Timeline tl;
  int fired = 0;
  tl.schedule(50, [&] { ++fired; });
  tl.advance_to(49);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(tl.pending_events(), 1u);
  tl.advance_to(50);
  EXPECT_EQ(fired, 1);
}

TEST(Timeline, RejectsBackwardsAndNegative) {
  Timeline tl(10);
  EXPECT_THROW(tl.advance_to(5), Error);
  EXPECT_THROW(tl.schedule(-1, [] {}), Error);
}

// --- Archive -------------------------------------------------------------------

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture()
      : params_(params::load("tre-toy-96")),
        scheme_(params_),
        rng_(to_bytes("timeserver-tests")),
        server_(scheme_.server_keygen(rng_)) {}

  std::shared_ptr<const params::GdhParams> params_;
  core::TreScheme scheme_;
  hashing::HmacDrbg rng_;
  core::ServerKeyPair server_;
};

TEST_F(ServerFixture, ArchiveLookupAndCatchUp) {
  UpdateArchive archive;
  for (int i = 0; i < 10; ++i) {
    archive.put(scheme_.issue_update(server_, "tag-" + std::to_string(i)));
  }
  EXPECT_EQ(archive.size(), 10u);
  EXPECT_TRUE(archive.contains("tag-3"));
  EXPECT_FALSE(archive.contains("tag-99"));
  auto found = archive.find("tag-7");
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(scheme_.verify_update(server_.pub, *found));

  size_t cursor = 0;
  EXPECT_EQ(archive.since(cursor).size(), 10u);
  EXPECT_EQ(cursor, 10u);
  archive.put(scheme_.issue_update(server_, "tag-10"));
  auto fresh = archive.since(cursor);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].tag, "tag-10");
  EXPECT_GT(archive.total_bytes(), 0u);
}

TEST_F(ServerFixture, ArchiveIdempotentPutAndConflictDetection) {
  UpdateArchive archive;
  core::KeyUpdate upd = scheme_.issue_update(server_, "tag");
  archive.put(upd);
  archive.put(upd);  // idempotent
  EXPECT_EQ(archive.size(), 1u);
  core::KeyUpdate conflicting{"tag", upd.sig.doubled()};
  EXPECT_THROW(archive.put(conflicting), Error);
}

// --- BroadcastBus ----------------------------------------------------------------

TEST_F(ServerFixture, BroadcastDeliversToAllSubscribers) {
  Timeline tl;
  BroadcastBus bus(tl);
  int received = 0;
  for (int i = 0; i < 5; ++i) {
    bus.subscribe([&](const core::KeyUpdate&) { ++received; });
  }
  bus.publish(scheme_.issue_update(server_, "t"));
  tl.drain_due();
  EXPECT_EQ(received, 5);
  EXPECT_EQ(bus.stats().published, 1u);
  EXPECT_EQ(bus.stats().deliveries, 5u);
  // The server transmitted the update once, not 5 times.
  EXPECT_EQ(bus.stats().bytes_broadcast,
            scheme_.issue_update(server_, "t").to_bytes().size());
}

TEST_F(ServerFixture, BroadcastLossIsApplied) {
  Timeline tl;
  BroadcastBus bus(tl, to_bytes("loss-seed"));
  bus.set_loss_probability(0.5);
  int received = 0;
  bus.subscribe([&](const core::KeyUpdate&) { ++received; });
  for (int i = 0; i < 200; ++i) {
    bus.publish(scheme_.issue_update(server_, "t" + std::to_string(i)));
  }
  tl.drain_due();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(bus.stats().drops + bus.stats().deliveries, 200u);
}

TEST_F(ServerFixture, BroadcastDelayIsHonoured) {
  Timeline tl;
  BroadcastBus bus(tl);
  bus.set_delay_range(3, 3);
  std::int64_t delivered_at = -1;
  bus.subscribe([&](const core::KeyUpdate&) { delivered_at = tl.now(); });
  bus.publish(scheme_.issue_update(server_, "t"));
  tl.advance_to(2);
  EXPECT_EQ(delivered_at, -1);
  tl.advance_to(3);
  EXPECT_EQ(delivered_at, 3);
}

TEST_F(ServerFixture, Unsubscribe) {
  Timeline tl;
  BroadcastBus bus(tl);
  int received = 0;
  auto id = bus.subscribe([&](const core::KeyUpdate&) { ++received; });
  bus.unsubscribe(id);
  bus.publish(scheme_.issue_update(server_, "t"));
  tl.drain_due();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

// --- TimeServer -------------------------------------------------------------------

TEST(TimeServer, TickIssuesEveryDueGranule) {
  Timeline tl(1118048400);  // 2005-06-06T09:00:00Z
  hashing::HmacDrbg rng(to_bytes("ts"));
  TimeServer server(params::load("tre-toy-96"), tl, Granularity::kMinute, rng);
  EXPECT_EQ(server.tick(), 1u);  // the boundary at start time itself
  tl.advance_by(180);            // three more minutes
  EXPECT_EQ(server.tick(), 3u);
  EXPECT_EQ(server.archive().size(), 4u);
  EXPECT_TRUE(server.archive().contains("2005-06-06T09:02Z"));
  EXPECT_EQ(server.stats().updates_issued, 4u);
}

TEST(TimeServer, RunSelfSchedules) {
  Timeline tl(0);
  hashing::HmacDrbg rng(to_bytes("ts-run"));
  TimeServer server(params::load("tre-toy-96"), tl, Granularity::kHour, rng);
  int heard = 0;
  server.bus().subscribe([&](const core::KeyUpdate&) { ++heard; });
  server.run(/*until=*/10 * 3600);
  tl.advance_to(10 * 3600);
  EXPECT_EQ(server.archive().size(), 11u);  // hours 0..10 inclusive
  EXPECT_EQ(heard, 11);
}

TEST(TimeServer, RefusesFutureIssuance) {
  Timeline tl(1000000);
  hashing::HmacDrbg rng(to_bytes("ts-refuse"));
  TimeServer server(params::load("tre-toy-96"), tl, Granularity::kSecond, rng);
  TimeSpec future = TimeSpec::from_unix(tl.now() + 60, Granularity::kSecond);
  EXPECT_THROW(server.issue_for(future), Error);
  TimeSpec past = TimeSpec::from_unix(tl.now() - 60, Granularity::kSecond);
  core::KeyUpdate upd = server.issue_for(past);
  core::TreScheme scheme(params::load("tre-toy-96"));
  EXPECT_TRUE(scheme.verify_update(server.public_key(), upd));
}

TEST(TimeServer, IssueRangeBackfillsAndMatchesSingleIssue) {
  Timeline tl(1118048400);  // 2005-06-06T09:00:00Z
  hashing::HmacDrbg rng(to_bytes("ts-range"));
  auto params = params::load("tre-toy-96");
  TimeServer server(params, tl, Granularity::kMinute, rng);

  // Pre-issue one instant inside the range: issue_range must serve it
  // from the archive, not re-sign it.
  TimeSpec mid = TimeSpec::from_unix(tl.now() - 120, Granularity::kMinute);
  core::KeyUpdate pre = server.issue_for(mid);
  EXPECT_EQ(server.stats().updates_issued, 1u);

  TimeSpec from = TimeSpec::from_unix(tl.now() - 240, Granularity::kMinute);
  TimeSpec to = TimeSpec::from_unix(tl.now(), Granularity::kMinute);
  std::vector<core::KeyUpdate> range = server.issue_range(from, to, /*threads=*/2);
  ASSERT_EQ(range.size(), 5u);  // minutes -4 .. 0 inclusive
  EXPECT_EQ(server.stats().updates_issued, 5u);  // 4 fresh + 1 archived

  core::TreScheme scheme(params);
  TimeSpec t = from;
  for (const core::KeyUpdate& upd : range) {
    EXPECT_EQ(upd.tag, t.canonical());
    EXPECT_TRUE(scheme.verify_update(server.public_key(), upd));
    EXPECT_TRUE(server.archive().contains(upd.tag));
    t = t.next();
  }
  EXPECT_EQ(range[2], pre);  // the archived instant came back verbatim

  // Idempotent: a second call issues nothing new.
  std::vector<core::KeyUpdate> again = server.issue_range(from, to);
  EXPECT_EQ(server.stats().updates_issued, 5u);
  for (size_t i = 0; i < again.size(); ++i) EXPECT_EQ(again[i], range[i]);
}

TEST(TimeServer, IssueRangeRefusesFutureOrInvertedRanges) {
  Timeline tl(1000000);
  hashing::HmacDrbg rng(to_bytes("ts-range-bad"));
  TimeServer server(params::load("tre-toy-96"), tl, Granularity::kSecond, rng);
  TimeSpec now = TimeSpec::from_unix(tl.now(), Granularity::kSecond);
  TimeSpec future = TimeSpec::from_unix(tl.now() + 60, Granularity::kSecond);
  EXPECT_THROW(server.issue_range(now, future), Error);
  TimeSpec past = TimeSpec::from_unix(tl.now() - 60, Granularity::kSecond);
  EXPECT_THROW(server.issue_range(now, past), Error);
}

TEST(TimeServer, UpdatesVerifyAndDecryptEndToEnd) {
  Timeline tl(1118048400);
  hashing::HmacDrbg rng(to_bytes("ts-e2e"));
  auto params = params::load("tre-toy-96");
  TimeServer server(params, tl, Granularity::kMinute, rng);
  core::TreScheme scheme(params);
  core::UserKeyPair user = scheme.user_keygen(server.public_key(), rng);

  // Sender encrypts for two minutes from now — no interaction with server.
  TimeSpec release = TimeSpec::from_unix(tl.now() + 120, Granularity::kMinute);
  Bytes msg = to_bytes("sealed bid: $1M");
  core::Ciphertext ct =
      scheme.encrypt(msg, user.pub, server.public_key(), release.canonical(), rng);

  // Receiver subscribes and waits.
  std::optional<Bytes> opened;
  server.bus().subscribe([&](const core::KeyUpdate& upd) {
    if (upd.tag == release.canonical()) {
      opened = scheme.decrypt(ct, user.a, upd);
    }
  });
  server.run(tl.now() + 300);
  tl.advance_by(60);
  server.tick();
  tl.drain_due();
  EXPECT_FALSE(opened.has_value());  // too early
  tl.advance_by(60);
  server.tick();
  tl.drain_due();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(TimeServer, MissedUpdateRecoveredFromArchive) {
  Timeline tl(0);
  hashing::HmacDrbg rng(to_bytes("ts-missed"));
  auto params = params::load("tre-toy-96");
  TimeServer server(params, tl, Granularity::kHour, rng);
  server.bus().set_loss_probability(1.0);  // receiver misses everything

  core::TreScheme scheme(params);
  core::UserKeyPair user = scheme.user_keygen(server.public_key(), rng);
  TimeSpec release = TimeSpec::from_unix(3600, Granularity::kHour);
  Bytes msg = to_bytes("recovered");
  core::Ciphertext ct =
      scheme.encrypt(msg, user.pub, server.public_key(), release.canonical(), rng);

  int heard = 0;
  server.bus().subscribe([&](const core::KeyUpdate&) { ++heard; });
  server.run(2 * 3600);
  tl.advance_to(2 * 3600);
  EXPECT_EQ(heard, 0);  // all broadcasts lost

  // Catch-up from the public archive still works.
  auto upd = server.archive().find(release.canonical());
  ASSERT_TRUE(upd.has_value());
  EXPECT_EQ(scheme.decrypt(ct, user.a, *upd), msg);
}

}  // namespace
}  // namespace tre::server
