// Bit-identity regression for the backend-generic refactor: the type-1
// instantiation of core/tre_core.h must emit byte-for-byte what the
// pre-template TreScheme emitted under the same DRBG. The golden vectors
// below were captured from the pre-refactor tree (seeds
// "golden-tre-toy-96" / "golden-tre-512"); any change to randomness draw
// order, hash domain labels, wire formats, or pairing-call orientation
// shows up here as a hex diff.
#include <gtest/gtest.h>

#include <string>

#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre {
namespace {

constexpr const char* kToyServer =
    "023f3673e5667f1d8e20e36fac030ca9624f32d078f9d439b86d";
constexpr const char* kToyUser =
    "02169b15b4ba8feadcebd50e7d0397d176d10a7644b8085acc75";
constexpr const char* kToyPwUser =
    "03733a46d152d07df8dcf96abd030872bc332073a3f34b622a83";
constexpr const char* kToyUpdate =
    "0014323033302d30312d30315430303a30303a30305a0313dba18a129df8dee2"
    "3ed577";
constexpr const char* kToyBasic =
    "02782beb689cb48bd2d69575ad001b5259caef00472280a1e7ddc93a852ab2a8"
    "baeeb8d46db40009197b";
constexpr const char* kToyFo =
    "0211e2226c7688a21b0fca821200202f61deb156953788ebfb13d46f918b3bd8"
    "0edcf63e124416f06a6100cbd0a88a001bb241e385b5a5d04e8a98859ab1c73f"
    "85ec7734bdfc063f2587690c";
constexpr const char* kToyReact =
    "032eca759bbd870ae26b2da5f0002084d38322b9d419b5d0d14ed932946b2ef9"
    "a676bb692a4a0df98cd0f7d922b6b2001b03be2b0d7d80682302dea0067bfd73"
    "a3638eaf811baf7c3ce4e2e200206abf3586025d8adf6138933222de3f3e73fe"
    "a878ad1f3a7fd5ed613090cfa01d";
constexpr const char* kToySealed =
    "0303028785f8ec5ce6aa6bd7bdd800206c846935a556f12492851bb9e99d6039"
    "a1c1c3bb28a69949960fd93bc29b9cdd001bb8d9ca377deb082b660707bb4a03"
    "00f63d887a8558543bd98973f200209aad7994b171b244bc1897aff458aca1a1"
    "bfca74cf64e1fd1fbe7688a02157eb";
constexpr const char* k512Server =
    "02184629d8d1847cff9cc37c0ef15a401cde0f1e68220ddc323fffcc71db5805"
    "556924d564fac80548750597d61ba05e79d2d3f03aba654b76eb6fda5b84a4e9"
    "e803445c85871028d77df859868782a15c852c08969ca17122a2bb72820ff9eb"
    "d8d23043289efc574bf2824b912e0aa8b0ee53c1c6a515c6c3bf914235fdb798"
    "5565";
constexpr const char* k512User =
    "024fb07025ede71148d7adae83a37f3b937ed35719afd631315419267f493fd6"
    "87ac953769d00623940c0b2e8f008721abcfe2753573a8722a46de166de04b24"
    "ca020054ec4d95bc5c674df94c9e1bf0b9a016431e77e3da67f4ee04c2c92d18"
    "bf6611990a328e1b57c2564c2152424d1362f693b0a41b2b18305ecc225b6c63"
    "97e4";
constexpr const char* k512PwUser =
    "032735b18de856c9e5b98f9f682b1fd0370a736f791a0777d6ed28d35b24fb89"
    "e5709a19ff34a04c912851f6148dc5b0c51a5ab4705b3b7ba8644953199342a3"
    "020355bdcb836520a4d184e5a81c585ea2845fdd92bf5c667ef23c34e6b7c42f"
    "a5b5b798fee704f28343bd555ae0820e40ae3d988753f5a281aa8da5bb6b34d7"
    "d666";
constexpr const char* k512Update =
    "0014323033302d30312d30315430303a30303a30305a02238755fee6ba8ce4dd"
    "2069148b18e742e99b5fc31294d3f1342494332fbfa9e9f00935d1e3b52a92ec"
    "df78a907622a6126d935d150b36733f8f04e90dc7c5ec6";
constexpr const char* k512Basic =
    "023cf2afd756354c2f8d9cf96901f5b3bb8af0f50a5ee96de4226dc596e4ccd9"
    "999a5a2f71bfb1cada8e271bdf87ebde1c6650c878f96c396293bbcdc59ab3e7"
    "7a001b430d71bde2193738d190810f7fa620fb3ece0188155679681c7c3a";
constexpr const char* k512Fo =
    "0248780912e0b3e594a72897ffb31e91390889cddebe93a71e9f3548722192ae"
    "626b729c7f66802141391f7cce1bd70f570ce7a3df8cf95c442124023581296c"
    "e20020710d2922839727d8722a077148e7f8c65b36a294dd4074748a810a13a4"
    "ad0964001b51186249d2b5b42ac55eaaadab6ab5c1619657bab414e1c34b47b6";
constexpr const char* k512React =
    "033768a1f3a82b5830830854af5a6074daabef9be397b7eccadefd658ab685de"
    "a82bb95c47c590341a6037871b151360576aa3570a8e962c4c4fa81832a9c000"
    "9a0020fb6bcd886538718c4c9ed9c5fe02ab8acb1897bb0019409c2f3b13c744"
    "e98c30001b5a07053233ef222d4ebb3cb6d8d7acb762a6db4be5c6e9a922548b"
    "002096f789625ade68b9152a307a6695cae46f4e5cb8270615b5dbd8e0cf7ca1"
    "7fea";
constexpr const char* k512Sealed =
    "030306690d34a09d11fca9a9ff0c585d4f90fd8df5c2a21a8c3574740d8247b4"
    "9b58076a5d74eb2cf9732de518b79733041a66ce728f3c68c47870c1028dd50f"
    "0b300020af481e851a90c4f74bcfe4d36640eba3faf82ca744258320ceea4fd7"
    "77658ba2001b01162bdd386ebaf377a2d8466483b5461af7f7d5755c5c2ca3a8"
    "fc0020ecb85804ac0fcb04e24027d9f04b8a8735e66741d9dce1f52f3d1ca369"
    "e6ae53";

std::string hex(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * b.size());
  for (std::uint8_t byte : b) {
    out.push_back(digits[byte >> 4]);
    out.push_back(digits[byte & 0xf]);
  }
  return out;
}

struct Golden {
  const char* server;
  const char* user;
  const char* pw_user;
  const char* update;
  const char* basic;
  const char* fo;
  const char* react;
  const char* sealed;
};

// Replays exactly the capture program's operation sequence (keygen, keygen,
// password keygen, issue, encrypt, encrypt_fo, encrypt_react, seal) so the
// DRBG stream lines up draw for draw.
void check_golden(const char* set_name, const Golden& g, core::Tuning tuning) {
  auto params = params::load(set_name);
  core::TreScheme scheme(params, tuning);
  hashing::HmacDrbg rng(to_bytes(std::string("golden-") + set_name));
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  core::UserKeyPair pw = scheme.user_keygen_from_password(server.pub, "hunter2");
  const char* tag = "2030-01-01T00:00:00Z";
  core::KeyUpdate upd = scheme.issue_update(server, tag);
  Bytes msg = to_bytes("golden bit-identity message");
  auto ct = scheme.encrypt(msg, user.pub, server.pub, tag, rng);
  auto fo = scheme.encrypt_fo(msg, user.pub, server.pub, tag, rng);
  auto react = scheme.encrypt_react(msg, user.pub, server.pub, tag, rng);
  auto sealed = scheme.seal(core::Mode::kReact, msg, user.pub, server.pub, tag, rng);

  EXPECT_EQ(hex(server.pub.to_bytes()), g.server);
  EXPECT_EQ(hex(user.pub.to_bytes()), g.user);
  EXPECT_EQ(hex(pw.pub.to_bytes()), g.pw_user);
  EXPECT_EQ(hex(upd.to_bytes()), g.update);
  EXPECT_EQ(hex(ct.to_bytes()), g.basic);
  EXPECT_EQ(hex(fo.to_bytes()), g.fo);
  EXPECT_EQ(hex(react.to_bytes()), g.react);
  EXPECT_EQ(hex(sealed.to_bytes()), g.sealed);

  // And the golden ciphertexts still decrypt.
  EXPECT_EQ(scheme.decrypt(ct, user.a, upd), msg);
  auto fo_out = scheme.decrypt_fo(fo, user.a, upd, server.pub);
  ASSERT_TRUE(fo_out.has_value());
  EXPECT_EQ(*fo_out, msg);
  auto open_out = scheme.open(sealed, user.a, upd, server.pub);
  ASSERT_TRUE(open_out.has_value());
  EXPECT_EQ(*open_out, msg);
}

constexpr Golden kToy{kToyServer, kToyUser, kToyPwUser, kToyUpdate,
                      kToyBasic,  kToyFo,   kToyReact,  kToySealed};
constexpr Golden k512{k512Server, k512User, k512PwUser, k512Update,
                      k512Basic,  k512Fo,   k512React,  k512Sealed};

TEST(BackendIdentityTest, Toy96MatchesPreRefactorBytes) {
  check_golden("tre-toy-96", kToy, core::Tuning::fast());
}

TEST(BackendIdentityTest, Toy96MatchesUnderLegacyTuning) {
  check_golden("tre-toy-96", kToy, core::Tuning::legacy());
}

TEST(BackendIdentityTest, Tre512MatchesPreRefactorBytes) {
  check_golden("tre-512", k512, core::Tuning::fast());
}

TEST(BackendIdentityTest, Tre512MatchesUnderLockedCaches) {
  check_golden("tre-512", k512, core::Tuning::fast_locked());
}

}  // namespace
}  // namespace tre
