// Group-law, subgroup and hash-to-curve tests for G_1.
#include "ec/curve.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"
#include "hashing/drbg.h"

namespace tre::ec {
namespace {

using field::Fp;
using field::FpInt;

class EcTest : public ::testing::Test {
 protected:
  EcTest()
      : curve_(CurveCtx::create("toy", FpInt::from_hex("9b725bbc4bc00b0f29aea58f"),
                                FpInt::from_hex("fa08d6af57"))),
        rng_(to_bytes("ec-tests")) {}

  G1Point random_point(const char* label, int i) {
    Bytes msg = to_bytes(std::string(label) + std::to_string(i));
    return hash_to_g1(curve_.get(), msg);
  }

  std::shared_ptr<const CurveCtx> curve_;
  hashing::HmacDrbg rng_;
};

TEST_F(EcTest, ContextInvariants) {
  // cofactor * q == p + 1
  auto prod = bigint::mul_wide(curve_->cofactor, curve_->q);
  auto p_plus_1 = bigint::add(curve_->p.resized<24>(), bigint::BigInt<24>::from_u64(1));
  EXPECT_EQ(prod, p_plus_1);
  // zeta has order 3.
  auto one = field::Fp2::one(curve_->fp.get());
  EXPECT_NE(curve_->zeta, one);
  EXPECT_EQ(curve_->zeta * curve_->zeta * curve_->zeta, one);
}

TEST_F(EcTest, CreateRejectsBadParameters) {
  // q not dividing p+1.
  EXPECT_THROW(CurveCtx::create("bad", FpInt::from_hex("9b725bbc4bc00b0f29aea58f"),
                                FpInt::from_u64(65537)),
               Error);
}

TEST_F(EcTest, HashToG1OnCurveAndInSubgroup) {
  for (int i = 0; i < 10; ++i) {
    G1Point p = random_point("msg", i);
    ASSERT_FALSE(p.is_infinity());
    EXPECT_TRUE(on_curve(curve_.get(), p.x(), p.y()));
    EXPECT_TRUE(p.in_subgroup());
  }
}

TEST_F(EcTest, HashToG1Deterministic) {
  EXPECT_EQ(hash_to_g1(curve_.get(), to_bytes("2005-06-06T00:00:00Z")),
            hash_to_g1(curve_.get(), to_bytes("2005-06-06T00:00:00Z")));
  EXPECT_NE(hash_to_g1(curve_.get(), to_bytes("t1")),
            hash_to_g1(curve_.get(), to_bytes("t2")));
}

TEST_F(EcTest, GroupLaws) {
  G1Point p = random_point("a", 0);
  G1Point q = random_point("b", 0);
  G1Point r = random_point("c", 0);
  G1Point inf = G1Point::infinity(curve_.get());

  EXPECT_EQ(p + q, q + p);
  EXPECT_EQ((p + q) + r, p + (q + r));
  EXPECT_EQ(p + inf, p);
  EXPECT_EQ(inf + p, p);
  EXPECT_EQ(p + (-p), inf);
  EXPECT_EQ(p + p, p.doubled());
  EXPECT_EQ(p - q, p + (-q));
}

TEST_F(EcTest, ScalarMulBasics) {
  G1Point p = random_point("s", 0);
  EXPECT_EQ(p.mul(FpInt::from_u64(0)), G1Point::infinity(curve_.get()));
  EXPECT_EQ(p.mul(FpInt::from_u64(1)), p);
  EXPECT_EQ(p.mul(FpInt::from_u64(2)), p.doubled());
  EXPECT_EQ(p.mul(FpInt::from_u64(3)), p.doubled() + p);
  EXPECT_EQ(p.mul(FpInt::from_u64(5)),
            p + p + p + p + p);
}

TEST_F(EcTest, ScalarMulDistributesOverScalarAddition) {
  G1Point p = random_point("d", 0);
  for (int i = 0; i < 8; ++i) {
    FpInt a = bigint::random_below(rng_, curve_->q);
    FpInt b = bigint::random_below(rng_, curve_->q);
    FpInt sum = bigint::mod_wide(
        bigint::add(a.resized<13>(), b.resized<13>()), curve_->q);
    EXPECT_EQ(p.mul(a) + p.mul(b), p.mul(sum));
  }
}

TEST_F(EcTest, ScalarMulIsAssociativeAcrossPoints) {
  G1Point p = random_point("e", 0);
  FpInt a = bigint::random_below(rng_, curve_->q);
  FpInt b = bigint::random_below(rng_, curve_->q);
  EXPECT_EQ(p.mul(a).mul(b), p.mul(b).mul(a));
}

TEST_F(EcTest, OrderAnnihilatesSubgroup) {
  G1Point p = random_point("o", 0);
  EXPECT_TRUE(p.mul(curve_->q).is_infinity());
  // q-1 does not annihilate (p has exact order q).
  EXPECT_FALSE(p.mul(bigint::sub(curve_->q, FpInt::from_u64(1))).is_infinity());
}

TEST_F(EcTest, MakeRejectsOffCurvePoints) {
  const field::FpCtx* fp = curve_->fp.get();
  EXPECT_THROW(G1Point::make(curve_.get(), Fp::from_u64(fp, 12345),
                             Fp::from_u64(fp, 678)),
               Error);
}

TEST_F(EcTest, UncompressedSerializationRoundtrip) {
  G1Point p = random_point("ser", 0);
  Bytes enc = p.to_bytes();
  EXPECT_EQ(enc.size(), 1 + 2 * curve_->fp->byte_len);
  EXPECT_EQ(G1Point::from_bytes(curve_.get(), enc), p);

  G1Point inf = G1Point::infinity(curve_.get());
  EXPECT_EQ(G1Point::from_bytes(curve_.get(), inf.to_bytes()), inf);
}

TEST_F(EcTest, CompressedSerializationRoundtrip) {
  for (int i = 0; i < 10; ++i) {
    G1Point p = random_point("comp", i);
    Bytes enc = p.to_bytes_compressed();
    EXPECT_EQ(enc.size(), 1 + curve_->fp->byte_len);
    EXPECT_EQ(G1Point::from_bytes(curve_.get(), enc), p);
  }
}

TEST_F(EcTest, FromBytesRejectsMalformed) {
  G1Point p = random_point("rej", 0);
  Bytes enc = p.to_bytes();
  enc[0] = 0x05;  // unknown tag
  EXPECT_THROW(G1Point::from_bytes(curve_.get(), enc), Error);
  Bytes bad = p.to_bytes();
  bad[5] ^= 1;  // corrupt x: (x,y) off curve with overwhelming probability
  EXPECT_THROW(G1Point::from_bytes(curve_.get(), bad), Error);
  EXPECT_THROW(G1Point::from_bytes(curve_.get(), Bytes{}), Error);
}

TEST_F(EcTest, NegationOfInfinity) {
  G1Point inf = G1Point::infinity(curve_.get());
  EXPECT_EQ(-inf, inf);
  EXPECT_TRUE((-inf).is_infinity());
}

}  // namespace
}  // namespace tre::ec
