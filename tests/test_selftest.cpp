// The power-on self-test gate: the clean suite passes, every injected
// per-KAT corruption trips the gate, and once tripped the key-producing
// entry points fail closed with the typed error until the (test-only)
// reset. See src/selftest/ and common/health.h.
#include <gtest/gtest.h>

#include "bls12/tre381.h"
#include "common/health.h"
#include "core/tre.h"
#include "hashing/drbg.h"
#include "keystore/keystore.h"
#include "params/params.h"
#include "selftest/selftest.h"

namespace tre::selftest {
namespace {

class SelftestGate : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!health::enabled()) {
      GTEST_SKIP() << "built with TRE_SELFTEST=OFF: the gate compiles to nothing";
    }
    health::reset_for_testing();
  }
  void TearDown() override {
    if (health::enabled()) health::reset_for_testing();
  }
};

TEST_F(SelftestGate, CleanSuitePasses) {
  Report report = run();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.failed.empty());
  EXPECT_EQ(report.passed.size(), all_kats().size());
}

TEST_F(SelftestGate, EveryInjectedCorruptionTripsItsKat) {
  for (Kat kat : all_kats()) {
    Report report = run(kat);
    ASSERT_EQ(report.failed.size(), 1u) << kat_name(kat);
    EXPECT_EQ(report.failed[0], kat) << kat_name(kat);
    EXPECT_EQ(report.passed.size(), all_kats().size() - 1) << kat_name(kat);
  }
}

TEST_F(SelftestGate, KatNamesRoundTrip) {
  for (Kat kat : all_kats()) {
    auto back = kat_from_name(kat_name(kat));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kat);
  }
  EXPECT_FALSE(kat_from_name("no-such-kat").has_value());
}

TEST_F(SelftestGate, FirstGatedCallRunsTheSuiteOnce) {
  // With the runner registered (linking this binary arms it), the first
  // key-producing call executes the clean suite and succeeds.
  core::TreScheme scheme(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("gate"));
  EXPECT_NO_THROW({
    auto server = scheme.server_keygen(rng);
    (void)server;
  });
  EXPECT_FALSE(health::poisoned());
}

TEST_F(SelftestGate, PoisonedStateFailsClosedAcrossEntryPoints) {
  health::poison();
  core::TreScheme scheme(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("poisoned"));

  EXPECT_THROW(scheme.server_keygen(rng), SelftestError);
  EXPECT_THROW(scheme.issue_update(core::ServerKeyPair{}, "T"), SelftestError);

  bls12::Tre381Scheme scheme381 = bls12::make_tre381();
  EXPECT_THROW(scheme381.server_keygen(rng), SelftestError);

  EXPECT_THROW(keystore::seal(to_bytes("secret"), "pw", rng, 2), SelftestError);
  // A structurally plausible blob (long enough, nonzero iteration count)
  // so keystore::open reaches its gated key derivation.
  EXPECT_THROW(keystore::open(Bytes(64, 1), "pw"), SelftestError);

  // The typed code is what callers branch on.
  try {
    scheme.server_keygen(rng);
    FAIL() << "expected SelftestError";
  } catch (const SelftestError& e) {
    EXPECT_EQ(e.code(), Errc::kSelftestFailed);
  }
}

TEST_F(SelftestGate, SealingWorksAgainAfterReset) {
  health::poison();
  core::TreScheme scheme(params::load("tre-toy-96"));
  hashing::HmacDrbg rng(to_bytes("reset"));
  EXPECT_THROW(scheme.server_keygen(rng), SelftestError);
  health::reset_for_testing();
  EXPECT_NO_THROW({
    auto server = scheme.server_keygen(rng);
    auto user = scheme.user_keygen(server.pub, rng);
    auto ct = scheme.seal(core::Mode::kFo, to_bytes("m"), user.pub, server.pub, "T",
                          rng);
    auto update = scheme.issue_update(server, "T");
    auto out = scheme.open(ct, user.a, update, server.pub);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, to_bytes("m"));
  });
}

TEST_F(SelftestGate, RunnerPoisonsOnEnvFault) {
  // run_power_on() honors TRE_SELFTEST_FAULT; drive it directly the way
  // the health latch would, then confirm the latch reflects the result.
  ASSERT_EQ(setenv("TRE_SELFTEST_FAULT", "sha256", 1), 0);
  EXPECT_FALSE(run_power_on());
  ASSERT_EQ(unsetenv("TRE_SELFTEST_FAULT"), 0);
  // The faulty run latched the poisoned state through the KATs' own
  // gated calls (fail-closed as designed); unlatch before the clean run.
  health::reset_for_testing();
  EXPECT_TRUE(run_power_on());

  // An unknown fault name fails closed rather than silently passing.
  ASSERT_EQ(setenv("TRE_SELFTEST_FAULT", "definitely-not-a-kat", 1), 0);
  EXPECT_FALSE(run_power_on());
  ASSERT_EQ(unsetenv("TRE_SELFTEST_FAULT"), 0);
}

}  // namespace
}  // namespace tre::selftest
