// The load-bearing tests of the whole construction: bilinearity,
// non-degeneracy and symmetry of the modified Tate pairing.
#include "pairing/pairing.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"
#include "params/params.h"

namespace tre::pairing {
namespace {

using ec::G1Point;
using field::FpInt;

class PairingTest : public ::testing::TestWithParam<const char*> {
 protected:
  PairingTest() : params_(params::load(GetParam())), rng_(to_bytes("pairing-tests")) {}

  std::shared_ptr<const params::GdhParams> params_;
  hashing::HmacDrbg rng_;
};

TEST_P(PairingTest, NonDegenerate) {
  const G1Point& g = params_->base;
  Gt e = pair(g, g);
  EXPECT_FALSE(e.is_one());
  EXPECT_FALSE(e.is_zero());
}

TEST_P(PairingTest, OutputHasOrderDividingQ) {
  const G1Point& g = params_->base;
  Gt e = pair(g, g);
  EXPECT_TRUE(e.pow(params_->group_order()).is_one());
  // Norm 1: lives in the unitary subgroup.
  EXPECT_EQ(e.norm(), field::Fp::one(params_->ctx()->fp.get()));
}

TEST_P(PairingTest, Bilinearity) {
  const G1Point& g = params_->base;
  for (int i = 0; i < 3; ++i) {
    FpInt a = params::random_scalar(*params_, rng_);
    FpInt b = params::random_scalar(*params_, rng_);
    Gt lhs = pair(g.mul(a), g.mul(b));
    Gt rhs_a = pair(g, g.mul(b)).pow(a);
    Gt rhs_b = pair(g.mul(a), g).pow(b);
    Gt rhs_ab = pair(g, g).pow(a).pow(b);
    EXPECT_EQ(lhs, rhs_a);
    EXPECT_EQ(lhs, rhs_b);
    EXPECT_EQ(lhs, rhs_ab);
  }
}

TEST_P(PairingTest, BilinearInFirstArgumentAdditively) {
  const G1Point& g = params_->base;
  G1Point p = ec::hash_to_g1(params_->ctx(), to_bytes("P"));
  G1Point q = ec::hash_to_g1(params_->ctx(), to_bytes("Q"));
  // ê(P + Q, G) == ê(P, G) ê(Q, G)
  EXPECT_EQ(pair(p + q, g), pair(p, g) * pair(q, g));
  // and in the second argument.
  EXPECT_EQ(pair(g, p + q), pair(g, p) * pair(g, q));
}

TEST_P(PairingTest, SymmetricOnIndependentPoints) {
  // The modified pairing with a distortion map is symmetric:
  // ê(P, Q) == ê(Q, P) even for independently hashed points.
  G1Point p = ec::hash_to_g1(params_->ctx(), to_bytes("sym-P"));
  G1Point q = ec::hash_to_g1(params_->ctx(), to_bytes("sym-Q"));
  EXPECT_EQ(pair(p, q), pair(q, p));
}

TEST_P(PairingTest, InfinityMapsToIdentity) {
  const G1Point& g = params_->base;
  G1Point inf = G1Point::infinity(params_->ctx());
  EXPECT_TRUE(pair(inf, g).is_one());
  EXPECT_TRUE(pair(g, inf).is_one());
  EXPECT_TRUE(pair(inf, inf).is_one());
}

TEST_P(PairingTest, HashedPointsPairConsistently) {
  // The exact identity the TRE decryption relies on:
  //   ê(rG, s·H1(T))^a == ê(r·a·s·G, H1(T))
  const G1Point& g = params_->base;
  FpInt r = params::random_scalar(*params_, rng_);
  FpInt s = params::random_scalar(*params_, rng_);
  FpInt a = params::random_scalar(*params_, rng_);
  G1Point h1 = ec::hash_to_g1(params_->ctx(), to_bytes("2010-01-01T00:00:00Z"));

  Gt receiver_side = pair(g.mul(r), h1.mul(s)).pow(a);
  Gt sender_side = pair(g.mul(r).mul(a).mul(s), h1);
  EXPECT_EQ(receiver_side, sender_side);
}

TEST_P(PairingTest, PairingsEqualHelper) {
  const G1Point& g = params_->base;
  FpInt s = params::random_scalar(*params_, rng_);
  G1Point h1 = ec::hash_to_g1(params_->ctx(), to_bytes("cond"));
  // BLS verification: ê(sG, H1) == ê(G, sH1)
  EXPECT_TRUE(pairings_equal(g.mul(s), h1, g, h1.mul(s)));
  EXPECT_FALSE(pairings_equal(g.mul(s), h1, g, h1));
}

TEST_P(PairingTest, ProjectiveMatchesAffineReference) {
  // The optimized Jacobian Miller loop must agree with the textbook
  // affine implementation on random subgroup points.
  const G1Point& g = params_->base;
  for (int i = 0; i < 5; ++i) {
    FpInt a = params::random_scalar(*params_, rng_);
    FpInt b = params::random_scalar(*params_, rng_);
    G1Point p = g.mul(a);
    G1Point q = ec::hash_to_g1(params_->ctx(), to_bytes("aff" + std::to_string(i))).mul(b);
    EXPECT_EQ(pair(p, q), pair_affine(p, q));
  }
  EXPECT_EQ(pair(g, g), pair_affine(g, g));  // P == Q case
}

TEST_P(PairingTest, PairProductMatchesIteratedPairs) {
  const G1Point& g = params_->base;
  std::vector<std::pair<G1Point, G1Point>> pairs;
  Gt expected = gt_identity(params_->ctx());
  for (int i = 0; i < 4; ++i) {
    G1Point p = g.mul(params::random_scalar(*params_, rng_));
    G1Point q = ec::hash_to_g1(params_->ctx(), to_bytes("pp" + std::to_string(i)));
    pairs.emplace_back(p, q);
    expected = expected * pair(p, q);
  }
  EXPECT_EQ(pair_product(pairs), expected);
}

TEST_P(PairingTest, PairProductSingletonEqualsPair) {
  const G1Point& g = params_->base;
  G1Point h = ec::hash_to_g1(params_->ctx(), to_bytes("solo"));
  std::vector<std::pair<G1Point, G1Point>> one = {{g, h}};
  EXPECT_EQ(pair_product(one), pair(g, h));
  EXPECT_THROW(pair_product({}), Error);
}

TEST_P(PairingTest, MillerFinalExpComposition) {
  const G1Point& g = params_->base;
  G1Point h = ec::hash_to_g1(params_->ctx(), to_bytes("compose"));
  MillerValue f = miller_loop(g, h);
  EXPECT_EQ(final_exponentiation(params_->ctx(), f), pair(g, h));
}

TEST_P(PairingTest, PairingsEqualHandlesInfinity) {
  const G1Point& g = params_->base;
  G1Point inf = G1Point::infinity(params_->ctx());
  // ê(O, g) == ê(g, O) == 1.
  EXPECT_TRUE(pairings_equal(inf, g, g, inf));
  EXPECT_FALSE(pairings_equal(g, g, inf, g));
}

TEST_P(PairingTest, MultiMillerLoopMatchesSingles) {
  // The shared-squaring loop must produce the same G_2 value as the
  // product of independent loops (exactly: same final exponentiation
  // input class, hence identical field elements after it).
  const G1Point& g = params_->base;
  std::vector<std::pair<G1Point, G1Point>> pairs;
  Gt expected = gt_identity(params_->ctx());
  for (int i = 0; i < 3; ++i) {
    G1Point p = g.mul(params::random_scalar(*params_, rng_));
    G1Point q = ec::hash_to_g1(params_->ctx(), to_bytes("mm" + std::to_string(i)));
    pairs.emplace_back(p, q);
    expected = expected * final_exponentiation(params_->ctx(), miller_loop(p, q));
  }
  EXPECT_EQ(final_exponentiation(params_->ctx(), miller_loop_multi(pairs)), expected);
  // Infinity pairs are neutral inside the shared loop.
  pairs.emplace_back(G1Point::infinity(params_->ctx()), g);
  EXPECT_EQ(final_exponentiation(params_->ctx(), miller_loop_multi(pairs)), expected);
}

TEST_P(PairingTest, MillerPrecompMatchesPair) {
  const G1Point& g = params_->base;
  for (int i = 0; i < 3; ++i) {
    G1Point p = g.mul(params::random_scalar(*params_, rng_));
    MillerPrecomp pre(p);
    for (int j = 0; j < 3; ++j) {
      G1Point q =
          ec::hash_to_g1(params_->ctx(), to_bytes("mp" + std::to_string(3 * i + j)));
      // Same value whichever slot the precomputed point occupies (the
      // pairing is symmetric on the cyclic G_1).
      EXPECT_EQ(pre.pair(q), pair(p, q));
      EXPECT_EQ(pre.pair(q), pair(q, p));
    }
    EXPECT_EQ(pre.pair(p), pair(p, p));  // evaluation at the base itself
    EXPECT_TRUE(pre.pair(G1Point::infinity(params_->ctx())).is_one());
  }
}

TEST_P(PairingTest, MillerPrecompDegenerateBase) {
  const G1Point& g = params_->base;
  MillerPrecomp pre(G1Point::infinity(params_->ctx()));
  EXPECT_TRUE(pre.pair(g).is_one());
}

INSTANTIATE_TEST_SUITE_P(AllParams, PairingTest,
                         ::testing::Values("tre-toy-96"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// One expensive sanity check at production size.
TEST(PairingProduction, BilinearAt512Bits) {
  auto params = params::load("tre-512");
  hashing::HmacDrbg rng(to_bytes("pairing-512"));
  const G1Point& g = params->base;
  FpInt a = params::random_scalar(*params, rng);
  FpInt b = params::random_scalar(*params, rng);
  EXPECT_EQ(pair(g.mul(a), g.mul(b)), pair(g, g).pow(a).pow(b));
}

}  // namespace
}  // namespace tre::pairing
