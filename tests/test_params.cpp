// Parameter-set loading, validation and runtime generation.
#include "params/params.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre::params {
namespace {

TEST(Params, AvailableListsAllSets) {
  auto names = available();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "tre-toy-96");
  EXPECT_EQ(names[1], "tre-512");
  EXPECT_EQ(names[2], "tre-768");
}

TEST(Params, LoadUnknownThrows) {
  EXPECT_THROW(load("no-such-set"), Error);
}

TEST(Params, EmbeddedSetsAreWellFormed) {
  hashing::HmacDrbg rng(to_bytes("params-tests"));
  for (const auto& name : available()) {
    SCOPED_TRACE(name);
    auto p = load(name);
    EXPECT_EQ(p->name, name);
    EXPECT_TRUE(bigint::is_probable_prime(p->curve->p, rng, 10));
    EXPECT_TRUE(bigint::is_probable_prime(p->curve->q, rng, 10));
    ASSERT_FALSE(p->base.is_infinity());
    EXPECT_TRUE(p->base.in_subgroup());
  }
}

TEST(Params, SizesAreConsistent) {
  auto p = load("tre-512");
  EXPECT_EQ(p->scalar_bytes(), 20u);           // 160-bit q
  EXPECT_EQ(p->g1_uncompressed_bytes(), 129u);  // 1 + 2*64
  EXPECT_EQ(p->g1_compressed_bytes(), 65u);
  EXPECT_EQ(p->gt_bytes(), 128u);
}

TEST(Params, BaseIsDeterministicPerSet) {
  EXPECT_EQ(load("tre-toy-96")->base, load("tre-toy-96")->base);
  auto a = load("tre-toy-96");
  auto b = load("tre-512");
  // Different sets use different fields entirely.
  EXPECT_NE(a->curve->p, b->curve->p);
}

TEST(Params, RandomScalarInRange) {
  auto p = load("tre-toy-96");
  hashing::HmacDrbg rng(to_bytes("scalar-tests"));
  for (int i = 0; i < 100; ++i) {
    auto s = random_scalar(*p, rng);
    EXPECT_FALSE(s.is_zero());
    EXPECT_LT(s, p->group_order());
  }
}

TEST(Params, GenerateProducesValidCurve) {
  hashing::HmacDrbg rng(to_bytes("paramgen-tests"));
  auto p = generate(rng, /*qbits=*/32, /*pbits=*/80, "unit-test-set");
  EXPECT_EQ(p->name, "unit-test-set");
  EXPECT_TRUE(bigint::is_probable_prime(p->curve->p, rng, 10));
  EXPECT_EQ(p->curve->q.bit_length(), 32u);
  EXPECT_LE(p->curve->p.bit_length(), 80u);
  EXPECT_TRUE(p->base.in_subgroup());
}

TEST(Params, GeneratedCurveRunsTheFullScheme) {
  // Freshly searched parameters must be drop-in: the whole protocol
  // works on them, not just the curve invariants.
  hashing::HmacDrbg rng(to_bytes("paramgen-e2e"));
  auto p = generate(rng, /*qbits=*/40, /*pbits=*/96, "fresh");
  core::TreScheme scheme(p);
  core::ServerKeyPair server = scheme.server_keygen(rng);
  core::UserKeyPair user = scheme.user_keygen(server.pub, rng);
  EXPECT_TRUE(scheme.verify_user_public_key(server.pub, user.pub));
  Bytes msg = to_bytes("fresh-curve roundtrip");
  core::Ciphertext ct = scheme.encrypt(msg, user.pub, server.pub, "T", rng);
  core::KeyUpdate upd = scheme.issue_update(server, "T");
  EXPECT_TRUE(scheme.verify_update(server.pub, upd));
  EXPECT_EQ(scheme.decrypt(ct, user.a, upd), msg);
}

TEST(Params, GenerateRejectsBadSizes) {
  hashing::HmacDrbg rng(to_bytes("paramgen-tests"));
  EXPECT_THROW(generate(rng, 8, 80), Error);      // q too small
  EXPECT_THROW(generate(rng, 64, 64), Error);     // p not larger than q
  EXPECT_THROW(generate(rng, 64, 100000), Error); // beyond capacity
}

}  // namespace
}  // namespace tre::params
