// BLS12-381 backend: tower arithmetic, curve groups, and — the acid
// test — ate-pairing bilinearity. The context itself validates p, r,
// curve orders and the Frobenius eigenvalue at construction, so merely
// constructing it exercises the self-checks.
#include "bls12/threshold381.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::bls12 {
namespace {

class Bls12Test : public ::testing::Test {
 protected:
  Bls12Test() : ctx_(Bls12Ctx::get()), rng_(to_bytes("bls12-tests")) {}

  Fp2 random_fp2() {
    return Fp2(Fp::random(ctx_->fp(), rng_), Fp::random(ctx_->fp(), rng_));
  }
  Fp12 random_fp12() {
    const TowerCtx& t = ctx_->tower();
    Fp12 r = fp12_zero(t);
    r.c0 = Fp6{random_fp2(), random_fp2(), random_fp2()};
    r.c1 = Fp6{random_fp2(), random_fp2(), random_fp2()};
    return r;
  }

  std::shared_ptr<const Bls12Ctx> ctx_;
  hashing::HmacDrbg rng_;
};

TEST_F(Bls12Test, DerivedConstantsValidated) {
  // Construction already ran the self-checks; spot-check the headline
  // facts here.
  EXPECT_EQ(ctx_->p().bit_length(), 381u);
  EXPECT_EQ(ctx_->r().bit_length(), 255u);
  EXPECT_TRUE(ctx_->fp()->p_mod_4_is_3);
}

TEST_F(Bls12Test, TowerFieldAxioms) {
  const TowerCtx& t = ctx_->tower();
  for (int i = 0; i < 5; ++i) {
    Fp12 a = random_fp12(), b = random_fp12(), c = random_fp12();
    EXPECT_TRUE(fp12_eq(fp12_mul(t, a, b), fp12_mul(t, b, a)));
    EXPECT_TRUE(fp12_eq(fp12_mul(t, fp12_mul(t, a, b), c),
                        fp12_mul(t, a, fp12_mul(t, b, c))));
    EXPECT_TRUE(fp12_eq(fp12_mul(t, a, fp12_add(b, c)),
                        fp12_add(fp12_mul(t, a, b), fp12_mul(t, a, c))));
    EXPECT_TRUE(fp12_eq(fp12_sqr(t, a), fp12_mul(t, a, a)));
    EXPECT_TRUE(fp12_is_one(t, fp12_mul(t, a, fp12_inv(t, a))));
  }
}

TEST_F(Bls12Test, FrobeniusIsThePPowerMap) {
  const TowerCtx& t = ctx_->tower();
  Fp12 a = random_fp12();
  Fp12 via_frob = fp12_frobenius(t, a);
  Fp12 via_pow = fp12_pow(t, a, ctx_->p());
  EXPECT_TRUE(fp12_eq(via_frob, via_pow));
  // frob^12 = identity.
  Fp12 twelve = a;
  for (int i = 0; i < 12; ++i) twelve = fp12_frobenius(t, twelve);
  EXPECT_TRUE(fp12_eq(twelve, a));
}

TEST_F(Bls12Test, Fp2SqrtWorks) {
  for (int i = 0; i < 10; ++i) {
    Fp2 a = random_fp2();
    Fp2 sq = a.squared();
    auto root = sq.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == -a);
  }
}

TEST_F(Bls12Test, G1GroupBasics) {
  const G1Point381& g = ctx_->g1_generator();
  EXPECT_TRUE(ctx_->g1_on_curve(g));
  EXPECT_TRUE(ctx_->g1_in_subgroup(g));
  EXPECT_TRUE(ctx_->g1_mul(g, ctx_->r()).inf);

  Scalar a = ctx_->random_scalar(rng_);
  Scalar b = ctx_->random_scalar(rng_);
  Scalar sum = bigint::mod_wide(
      bigint::add(a.resized<13>(), b.resized<13>()), ctx_->r());
  EXPECT_TRUE(ctx_->g1_eq(ctx_->g1_add(ctx_->g1_mul(g, a), ctx_->g1_mul(g, b)),
                          ctx_->g1_mul(g, sum)));
}

TEST_F(Bls12Test, G2GroupBasics) {
  const G2Point381& h = ctx_->g2_generator();
  EXPECT_TRUE(ctx_->g2_on_curve(h));
  EXPECT_TRUE(ctx_->g2_in_subgroup(h));
  Scalar a = ctx_->random_scalar(rng_);
  Scalar b = ctx_->random_scalar(rng_);
  Scalar sum = bigint::mod_wide(
      bigint::add(a.resized<13>(), b.resized<13>()), ctx_->r());
  EXPECT_TRUE(ctx_->g2_eq(ctx_->g2_add(ctx_->g2_mul(h, a), ctx_->g2_mul(h, b)),
                          ctx_->g2_mul(h, sum)));
}

TEST_F(Bls12Test, HashToG1) {
  G1Point381 p1 = ctx_->hash_to_g1(to_bytes("2030-01-01T00:00:00Z"));
  G1Point381 p2 = ctx_->hash_to_g1(to_bytes("2030-01-01T00:00:00Z"));
  G1Point381 p3 = ctx_->hash_to_g1(to_bytes("2030-01-01T00:00:01Z"));
  EXPECT_TRUE(ctx_->g1_eq(p1, p2));
  EXPECT_FALSE(ctx_->g1_eq(p1, p3));
  EXPECT_TRUE(ctx_->g1_in_subgroup(p1));
}

TEST_F(Bls12Test, SerializationRoundtrips) {
  G1Point381 p = ctx_->hash_to_g1(to_bytes("ser"));
  EXPECT_TRUE(ctx_->g1_eq(ctx_->g1_from_bytes(ctx_->g1_to_bytes(p)), p));
  EXPECT_EQ(ctx_->g1_to_bytes(p).size(), 49u);

  G2Point381 q = ctx_->g2_mul(ctx_->g2_generator(), ctx_->random_scalar(rng_));
  EXPECT_TRUE(ctx_->g2_eq(ctx_->g2_from_bytes(ctx_->g2_to_bytes(q)), q));
  EXPECT_EQ(ctx_->g2_to_bytes(q).size(), 97u);

  EXPECT_TRUE(ctx_->g1_from_bytes(ctx_->g1_to_bytes(ctx_->g1_infinity())).inf);
}

TEST_F(Bls12Test, PairingBilinearity) {
  const G1Point381& g = ctx_->g1_generator();
  const G2Point381& h = ctx_->g2_generator();
  Gt381 e = ctx_->pair(g, h);
  EXPECT_FALSE(fp12_is_one(ctx_->tower(), e));  // non-degenerate

  Scalar a = ctx_->random_scalar(rng_);
  Scalar b = ctx_->random_scalar(rng_);
  Gt381 lhs = ctx_->pair(ctx_->g1_mul(g, a), ctx_->g2_mul(h, b));
  Gt381 rhs = ctx_->gt_pow(ctx_->gt_pow(e, a), b);
  EXPECT_TRUE(ctx_->gt_eq(lhs, rhs));

  // Swap sides: ê(aG, H) == ê(G, aH).
  EXPECT_TRUE(ctx_->gt_eq(ctx_->pair(ctx_->g1_mul(g, a), h),
                          ctx_->pair(g, ctx_->g2_mul(h, a))));
}

TEST_F(Bls12Test, PairingOrderAndIdentity) {
  Gt381 e = ctx_->pair(ctx_->g1_generator(), ctx_->g2_generator());
  EXPECT_TRUE(fp12_is_one(ctx_->tower(), ctx_->gt_pow(e, ctx_->r())));
  EXPECT_TRUE(fp12_is_one(ctx_->tower(),
                          ctx_->pair(ctx_->g1_infinity(), ctx_->g2_generator())));
}

TEST_F(Bls12Test, PairingsEqualHelper) {
  const G1Point381& g = ctx_->g1_generator();
  const G2Point381& h = ctx_->g2_generator();
  Scalar s = ctx_->random_scalar(rng_);
  // BLS verification shape: ê(s·H1(m), h) == ê(H1(m), s·h).
  G1Point381 hm = ctx_->hash_to_g1(to_bytes("message"));
  EXPECT_TRUE(ctx_->pairings_equal(ctx_->g1_mul(hm, s), h, hm, ctx_->g2_mul(h, s)));
  EXPECT_FALSE(ctx_->pairings_equal(ctx_->g1_mul(hm, s), h, hm, h));
  (void)g;
}

// --- The TRE scheme on BLS12-381 (tlock layout) ---------------------------------

class Tre381Test : public ::testing::Test {
 protected:
  Tre381Test()
      : scheme_(make_tre381()),
        rng_(to_bytes("tre381-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  Tre381Scheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKey381 server_;
  UserKey381 user_;
};

TEST_F(Tre381Test, KeysAndUpdatesVerify) {
  EXPECT_TRUE(scheme_.verify_server_public_key(server_.pub));
  EXPECT_TRUE(scheme_.verify_user_public_key(server_.pub, user_.pub));
  Update381 upd = scheme_.issue_update(server_, "2030-01-01T00:00:00Z");
  EXPECT_TRUE(scheme_.verify_update(server_.pub, upd));
  // Forgeries rejected.
  Update381 relabeled{"2031-01-01T00:00:00Z", upd.sig};
  EXPECT_FALSE(scheme_.verify_update(server_.pub, relabeled));
  UserKey381 eve = scheme_.user_keygen(server_.pub, rng_);
  UserPublicKey381 mixed{user_.pub.ag, eve.pub.asg};
  EXPECT_FALSE(scheme_.verify_user_public_key(server_.pub, mixed));
}

TEST_F(Tre381Test, RoundtripAndTimeLock) {
  Bytes msg = to_bytes("tlock-style timed release");
  auto ct = scheme_.encrypt(msg, user_.pub, server_.pub,
                            "2030-01-01T00:00:00Z", rng_);
  Update381 upd = scheme_.issue_update(server_, "2030-01-01T00:00:00Z");
  EXPECT_EQ(scheme_.decrypt(ct, user_.a, upd), msg);

  // Wrong update or wrong secret yields garbage.
  Update381 early = scheme_.issue_update(server_, "2029-12-31T23:59:59Z");
  EXPECT_NE(scheme_.decrypt(ct, user_.a, early), msg);
  UserKey381 eve = scheme_.user_keygen(server_.pub, rng_);
  EXPECT_NE(scheme_.decrypt(ct, eve.a, upd), msg);
}

TEST_F(Tre381Test, UpdatesAreShorterThanThe2005Curve) {
  // 48-byte G1 x-coordinates at ~128-bit security vs 64-byte at ~80-bit.
  EXPECT_EQ(Bls381Backend::gu_wire_bytes(*Bls12Ctx::get()), 49u);
  EXPECT_EQ(Bls381Backend::gh_wire_bytes(*Bls12Ctx::get()), 97u);
  const std::string tag = "2030-01-01T00:00:00Z";
  Update381 upd = scheme_.issue_update(server_, tag);
  EXPECT_EQ(upd.to_bytes().size(), 2 + tag.size() + 49);
}

TEST_F(Tre381Test, FoRoundtripAndTamperRejection) {
  Bytes msg = to_bytes("cca on the modern curve");
  auto ct = scheme_.encrypt_fo(msg, user_.pub, server_.pub,
                               "2030-01-01T00:00:00Z", rng_);
  Update381 upd = scheme_.issue_update(server_, "2030-01-01T00:00:00Z");
  auto out = scheme_.decrypt_fo(ct, user_.a, upd, server_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
  ct.c_msg[0] ^= 1;
  EXPECT_FALSE(scheme_.decrypt_fo(ct, user_.a, upd, server_.pub).has_value());
}

TEST_F(Tre381Test, WireRoundtrips) {
  const Bls12Ctx& ctx = scheme_.params();
  Update381 upd = scheme_.issue_update(server_, "2030-01-01T00:00:00Z");
  Update381 upd2 = Update381::from_bytes(ctx, upd.to_bytes());
  EXPECT_EQ(upd2.tag, upd.tag);
  EXPECT_TRUE(ctx.g1_eq(upd2.sig, upd.sig));

  Bytes msg = to_bytes("wire");
  auto ct = scheme_.encrypt(msg, user_.pub, server_.pub, "T", rng_);
  auto ct2 = Ciphertext381::from_bytes(ctx, ct.to_bytes());
  Update381 updt = scheme_.issue_update(server_, "T");
  EXPECT_EQ(scheme_.decrypt(ct2, user_.a, updt), msg);

  Bytes wire = upd.to_bytes();
  EXPECT_THROW(Update381::from_bytes(ctx, ByteSpan(wire.data(), wire.size() - 1)),
               Error);
  // The non-throwing parse returns nullopt on the same input.
  EXPECT_FALSE(
      Update381::try_from_bytes(ctx, ByteSpan(wire.data(), wire.size() - 1))
          .has_value());
  ASSERT_TRUE(Update381::try_from_bytes(ctx, wire).has_value());
}


// --- drand-shaped threshold network on BLS12-381 ---------------------------------

TEST(Threshold381Test, ThreeOfFiveEndToEnd) {
  Threshold381 net(Bls12Ctx::get());
  Tre381Scheme scheme = make_tre381();
  auto ctx = Bls12Ctx::get();
  hashing::HmacDrbg rng(to_bytes("threshold381-tests"));
  auto [key, shares] = net.setup({5, 3}, rng);

  // User binds to the group key (seen as an ordinary server key over the
  // fixed G_2 generator); the sharing is invisible.
  ServerPublicKey381 group = key.as_server_public_key();
  UserKey381 user = scheme.user_keygen(group, rng);
  Bytes msg = to_bytes("released by the network");
  auto ct = scheme.encrypt(msg, user.pub, group, "round-12345", rng);

  // Operators 1, 3, 5 publish partials; 4 is corrupt.
  std::vector<Partial381> partials = {net.issue_partial(shares[0], "round-12345"),
                                      net.issue_partial(shares[2], "round-12345"),
                                      net.issue_partial(shares[4], "round-12345")};
  for (const auto& p : partials) EXPECT_TRUE(net.verify_partial(key, p));
  Partial381 corrupt = net.issue_partial(shares[3], "round-12345");
  corrupt.sig = ctx->g1_add(corrupt.sig, corrupt.sig);
  EXPECT_FALSE(net.verify_partial(key, corrupt));

  Update381 update = net.combine(key, partials);
  EXPECT_TRUE(scheme.verify_update(group, update));
  EXPECT_EQ(scheme.decrypt(ct, user.a, update), msg);

  // Any other k-subset combines to the identical update.
  std::vector<Partial381> other = {net.issue_partial(shares[1], "round-12345"),
                                   net.issue_partial(shares[3], "round-12345"),
                                   net.issue_partial(shares[0], "round-12345")};
  Update381 update2 = net.combine(key, other);
  EXPECT_TRUE(ctx->g1_eq(update.sig, update2.sig));

  // Below threshold fails.
  std::vector<Partial381> two(partials.begin(), partials.begin() + 2);
  EXPECT_THROW(net.combine(key, two), Error);
}

}  // namespace
}  // namespace tre::bls12
