// §5.2 ID-TRE scheme tests.
#include "idtre/split_idtre.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::idtre {
namespace {

constexpr const char* kTag = "2005-06-06T09:00:00Z";
constexpr const char* kId = "alice@example.org";

class IdTreTest : public ::testing::Test {
 protected:
  IdTreTest()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("idtre-tests")),
        authority_(scheme_.setup(rng_)),
        alice_(scheme_.extract(authority_, kId)) {}

  IdTreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair authority_;
  IdPrivateKey alice_;
};

TEST_F(IdTreTest, ExtractedKeyVerifies) {
  EXPECT_TRUE(scheme_.verify_private_key(authority_.pub, alice_));
  IdPrivateKey relabeled{"bob@example.org", alice_.d};
  EXPECT_FALSE(scheme_.verify_private_key(authority_.pub, relabeled));
}

TEST_F(IdTreTest, RoundtripWithUpdate) {
  Bytes msg = to_bytes("identity-based timed release");
  Ciphertext ct = scheme_.encrypt(msg, kId, authority_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(authority_, kTag);
  EXPECT_TRUE(scheme_.verify_update(authority_.pub, upd));
  EXPECT_EQ(scheme_.decrypt(ct, alice_, upd), msg);
}

TEST_F(IdTreTest, WrongIdentityCannotDecrypt) {
  Bytes msg = to_bytes("for alice only");
  Ciphertext ct = scheme_.encrypt(msg, kId, authority_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(authority_, kTag);
  IdPrivateKey bob = scheme_.extract(authority_, "bob@example.org");
  EXPECT_NE(scheme_.decrypt(ct, bob, upd), msg);
}

TEST_F(IdTreTest, WrongUpdateCannotDecrypt) {
  Bytes msg = to_bytes("not yet");
  Ciphertext ct = scheme_.encrypt(msg, kId, authority_.pub, kTag, rng_);
  KeyUpdate early = scheme_.issue_update(authority_, "2005-06-06T08:59:59Z");
  EXPECT_NE(scheme_.decrypt(ct, alice_, early), msg);
}

TEST_F(IdTreTest, UpdateSharedAcrossAllIdentities) {
  // One broadcast serves every receiver (the scalability property ID-TRE
  // retains).
  Bytes m1 = to_bytes("to alice");
  Bytes m2 = to_bytes("to bob");
  Ciphertext c1 = scheme_.encrypt(m1, kId, authority_.pub, kTag, rng_);
  Ciphertext c2 = scheme_.encrypt(m2, "bob@example.org", authority_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(authority_, kTag);
  IdPrivateKey bob = scheme_.extract(authority_, "bob@example.org");
  EXPECT_EQ(scheme_.decrypt(c1, alice_, upd), m1);
  EXPECT_EQ(scheme_.decrypt(c2, bob, upd), m2);
}

TEST_F(IdTreTest, KeyEscrowIsInherent) {
  // The authority can decrypt any message by extracting the key itself —
  // the paper's §5.2 caveat, and the reason TRE exists.
  Bytes msg = to_bytes("the server reads this");
  Ciphertext ct = scheme_.encrypt(msg, kId, authority_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(authority_, kTag);
  IdPrivateKey self_extracted = scheme_.extract(authority_, kId);
  EXPECT_EQ(scheme_.decrypt(ct, self_extracted, upd), msg);
}

TEST_F(IdTreTest, FoRoundtripAndTamperRejection) {
  Bytes msg = to_bytes("cca secure");
  FoCiphertext ct = scheme_.encrypt_fo(msg, kId, authority_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(authority_, kTag);
  auto out = scheme_.decrypt_fo(ct, alice_, upd, authority_.pub);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);

  ct.c_msg[0] ^= 1;
  EXPECT_FALSE(scheme_.decrypt_fo(ct, alice_, upd, authority_.pub).has_value());
}

TEST_F(IdTreTest, MessageSizeSweep) {
  KeyUpdate upd = scheme_.issue_update(authority_, kTag);
  for (size_t n : {0u, 1u, 64u, 4096u}) {
    Bytes m = rng_.bytes(n);
    Ciphertext ct = scheme_.encrypt(m, kId, authority_.pub, kTag, rng_);
    EXPECT_EQ(scheme_.decrypt(ct, alice_, upd), m) << n;
  }
}

// --- Split-authority variant (§5.2, separate TA and time server) ---------------

class SplitIdTreTest : public ::testing::Test {
 protected:
  SplitIdTreTest()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("split-idtre-tests")),
        ta_(scheme_.authority_keygen(rng_)),
        ts_(scheme_.authority_keygen(rng_)),
        alice_(scheme_.extract(ta_, kId)) {}

  SplitAuthorityIdTre scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair ta_;  // identity authority
  ServerKeyPair ts_;  // time server
  IdPrivateKey alice_;
};

TEST_F(SplitIdTreTest, RoundtripNeedsBothAuthorities) {
  Bytes msg = to_bytes("two masters");
  Ciphertext ct = scheme_.encrypt(msg, kId, ta_.pub, ts_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(ts_, kTag);
  EXPECT_TRUE(scheme_.verify_private_key(ta_.pub, alice_));
  EXPECT_TRUE(scheme_.verify_update(ts_.pub, upd));
  EXPECT_EQ(scheme_.decrypt(ct, alice_, upd), msg);
}

TEST_F(SplitIdTreTest, TimeServerAloneCannotDecrypt) {
  // The always-online party holds s2 only; extracting the identity key
  // with the WRONG master yields garbage — escrow is confined to the
  // offline TA.
  Bytes msg = to_bytes("hidden from the time server");
  Ciphertext ct = scheme_.encrypt(msg, kId, ta_.pub, ts_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(ts_, kTag);
  IdPrivateKey ts_forged = scheme_.extract(ts_, kId);  // uses s2, not s1
  EXPECT_NE(scheme_.decrypt(ct, ts_forged, upd), msg);
}

TEST_F(SplitIdTreTest, WrongIdentityOrUpdateFails) {
  Bytes msg = to_bytes("m");
  Ciphertext ct = scheme_.encrypt(msg, kId, ta_.pub, ts_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(ts_, kTag);
  IdPrivateKey bob = scheme_.extract(ta_, "bob@example.org");
  EXPECT_NE(scheme_.decrypt(ct, bob, upd), msg);
  KeyUpdate early = scheme_.issue_update(ts_, "1999-01-01");
  EXPECT_NE(scheme_.decrypt(ct, alice_, early), msg);
}

TEST_F(SplitIdTreTest, SingleAuthoritySpecialCaseMatchesIdTre) {
  // With TA == TS the scheme degenerates to §5.2 exactly: the combined
  // decryption key is s·(H1(ID) + H1(T)).
  Bytes msg = to_bytes("degenerate");
  Ciphertext ct = scheme_.encrypt(msg, kId, ta_.pub, ta_.pub, kTag, rng_);
  KeyUpdate upd = scheme_.issue_update(ta_, kTag);
  EXPECT_EQ(scheme_.decrypt(ct, alice_, upd), msg);
}

TEST_F(SplitIdTreTest, RejectsForeignGenerators) {
  // Authorities must share the system generator for rG to serve both.
  IdTreScheme plain(params::load("tre-toy-96"));
  ServerKeyPair rogue = plain.setup(rng_);  // random generator
  EXPECT_THROW(scheme_.encrypt(to_bytes("m"), kId, rogue.pub, ts_.pub, kTag, rng_),
               Error);
}

}  // namespace
}  // namespace tre::idtre
