// §5.3.2 policy-lock generalization (single- and multi-condition).
#include "core/policylock.h"

#include <gtest/gtest.h>

#include "hashing/drbg.h"

namespace tre::core {
namespace {

class PolicyLockTest : public ::testing::Test {
 protected:
  PolicyLockTest()
      : lock_(params::load("tre-toy-96")),
        rng_(to_bytes("policy-tests")),
        witness_(lock_.scheme().server_keygen(rng_)),
        user_(lock_.scheme().user_keygen(witness_.pub, rng_)) {}

  PolicyLock lock_;
  hashing::HmacDrbg rng_;
  ServerKeyPair witness_;
  UserKeyPair user_;
};

TEST_F(PolicyLockTest, SingleConditionRoundtrip) {
  Bytes msg = to_bytes("open the vault");
  Ciphertext ct = lock_.lock(msg, user_.pub, witness_.pub, "It is an emergency", rng_);
  WitnessStatement st = lock_.attest(witness_, "It is an emergency");
  EXPECT_TRUE(lock_.verify_statement(witness_.pub, st));
  EXPECT_EQ(lock_.unlock(ct, user_.a, st), msg);
}

TEST_F(PolicyLockTest, WrongConditionStatementFails) {
  Bytes msg = to_bytes("open the vault");
  Ciphertext ct = lock_.lock(msg, user_.pub, witness_.pub, "It is an emergency", rng_);
  WitnessStatement st = lock_.attest(witness_, "Task X completed");
  EXPECT_NE(lock_.unlock(ct, user_.a, st), msg);
}

TEST_F(PolicyLockTest, ConjunctionNeedsAllStatements) {
  Bytes msg = to_bytes("dual-control secret");
  std::vector<std::string> conditions = {"Task X completed", "Auditor approved"};
  Ciphertext ct = lock_.lock_all(msg, user_.pub, witness_.pub, conditions, rng_);

  std::vector<WitnessStatement> both = {lock_.attest(witness_, conditions[0]),
                                        lock_.attest(witness_, conditions[1])};
  EXPECT_EQ(lock_.unlock_all(ct, user_.a, conditions, both), msg);

  // Order-insensitive.
  std::vector<WitnessStatement> swapped = {both[1], both[0]};
  EXPECT_EQ(lock_.unlock_all(ct, user_.a, conditions, swapped), msg);

  // One statement missing -> throws.
  std::vector<WitnessStatement> just_one = {both[0]};
  EXPECT_THROW(lock_.unlock_all(ct, user_.a, conditions, just_one), Error);

  // A statement for the wrong condition does not substitute.
  std::vector<WitnessStatement> wrong = {both[0], lock_.attest(witness_, "Other")};
  EXPECT_THROW(lock_.unlock_all(ct, user_.a, conditions, wrong), Error);
}

TEST_F(PolicyLockTest, ConjunctionOfOneEqualsSingle) {
  Bytes msg = to_bytes("single");
  std::vector<std::string> conditions = {"C"};
  Ciphertext ct = lock_.lock_all(msg, user_.pub, witness_.pub, conditions, rng_);
  std::vector<WitnessStatement> st = {lock_.attest(witness_, "C")};
  EXPECT_EQ(lock_.unlock_all(ct, user_.a, conditions, st), msg);
}

TEST_F(PolicyLockTest, TimedReleaseIsAPolicyInstance) {
  // The paper's observation: TRE is the special case where the condition
  // is "It is now time T".
  Bytes msg = to_bytes("press release");
  const char* t = "It is now 2005-06-06T09:00:00Z";
  Ciphertext ct = lock_.lock(msg, user_.pub, witness_.pub, t, rng_);
  EXPECT_EQ(lock_.unlock(ct, user_.a, lock_.attest(witness_, t)), msg);
}

TEST_F(PolicyLockTest, EmptyConditionsRejected) {
  EXPECT_THROW(lock_.lock_all(to_bytes("m"), user_.pub, witness_.pub, {}, rng_), Error);
}

}  // namespace
}  // namespace tre::core
