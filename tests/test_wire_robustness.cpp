// Adversarial wire-format tests: every public deserializer is fed
// systematically truncated, extended and bit-flipped images of valid
// encodings. The contract: parsing either throws tre::Error or yields an
// object that fails cryptographic verification — never a crash, never a
// silently-accepted forgery of a *verifying* artifact.
#include <gtest/gtest.h>

#include "baselines/hybrid.h"
#include "core/multiserver.h"
#include "core/policylock.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre::core {
namespace {

class WireRobustness : public ::testing::Test {
 protected:
  WireRobustness()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("wire-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  // Parses every truncation of `wire`; all must throw (a shorter valid
  // encoding would be a framing ambiguity).
  template <typename ParseFn>
  void expect_truncations_throw(const Bytes& wire, ParseFn parse) {
    for (size_t len = 0; len < wire.size(); ++len) {
      ByteSpan cut(wire.data(), len);
      EXPECT_THROW((void)parse(cut), Error) << "accepted truncation to " << len;
    }
    Bytes extended = wire;
    extended.push_back(0x00);
    EXPECT_THROW((void)parse(extended), Error) << "accepted trailing byte";
  }

  // Flips each bit of `wire` and parses; throwing is fine, returning is
  // fine too — the caller then checks semantic rejection.
  template <typename ParseFn, typename AcceptFn>
  void flip_bits(const Bytes& wire, ParseFn parse, AcceptFn on_parsed) {
    for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
      Bytes mutated = wire;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      try {
        on_parsed(parse(mutated), bit);
      } catch (const Error&) {
        // rejected at parse time: acceptable
      }
    }
  }

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair server_;
  UserKeyPair user_;
};

TEST_F(WireRobustness, KeyUpdateTruncationAndFlips) {
  KeyUpdate upd = scheme_.issue_update(server_, "2030-01-01");
  Bytes wire = upd.to_bytes();
  auto parse = [&](ByteSpan b) { return KeyUpdate::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  // Any surviving single-bit mutation must fail self-authentication.
  flip_bits(wire, parse, [&](const KeyUpdate& parsed, size_t bit) {
    EXPECT_FALSE(scheme_.verify_update(server_.pub, parsed))
        << "bit " << bit << " produced a verifying forgery";
  });
}

TEST_F(WireRobustness, ServerPublicKeyTruncations) {
  Bytes wire = server_.pub.to_bytes();
  expect_truncations_throw(
      wire, [&](ByteSpan b) { return ServerPublicKey::from_bytes(scheme_.params(), b); });
}

TEST_F(WireRobustness, UserPublicKeyFlipsNeverVerify) {
  Bytes wire = user_.pub.to_bytes();
  auto parse = [&](ByteSpan b) { return UserPublicKey::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const UserPublicKey& parsed, size_t bit) {
    // A mutated key must no longer verify as bound to this server
    // (unless the mutation was rejected already).
    EXPECT_FALSE(scheme_.verify_user_public_key(server_.pub, parsed))
        << "bit " << bit;
  });
}

TEST_F(WireRobustness, BasicCiphertextTruncations) {
  Ciphertext ct = scheme_.encrypt(to_bytes("msg"), user_.pub, server_.pub, "T", rng_);
  expect_truncations_throw(
      ct.to_bytes(), [&](ByteSpan b) { return Ciphertext::from_bytes(scheme_.params(), b); });
}

TEST_F(WireRobustness, FoCiphertextFlipsNeverDecrypt) {
  Bytes msg = to_bytes("integrity matters");
  FoCiphertext ct = scheme_.encrypt_fo(msg, user_.pub, server_.pub, "T", rng_);
  KeyUpdate upd = scheme_.issue_update(server_, "T");
  Bytes wire = ct.to_bytes();
  auto parse = [&](ByteSpan b) { return FoCiphertext::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const FoCiphertext& parsed, size_t bit) {
    auto out = scheme_.decrypt_fo(parsed, user_.a, upd, server_.pub);
    EXPECT_FALSE(out.has_value()) << "bit " << bit << " survived the FO check";
  });
}

TEST_F(WireRobustness, ReactCiphertextFlipsNeverDecrypt) {
  Bytes msg = to_bytes("integrity matters");
  ReactCiphertext ct = scheme_.encrypt_react(msg, user_.pub, server_.pub, "T", rng_);
  KeyUpdate upd = scheme_.issue_update(server_, "T");
  Bytes wire = ct.to_bytes();
  auto parse = [&](ByteSpan b) { return ReactCiphertext::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const ReactCiphertext& parsed, size_t bit) {
    auto out = scheme_.decrypt_react(parsed, user_.a, upd);
    EXPECT_FALSE(out.has_value()) << "bit " << bit << " survived the MAC";
  });
}

TEST_F(WireRobustness, MultiServerArtifactsTruncations) {
  MultiServerTre mstre(params::load("tre-toy-96"));
  std::vector<ServerPublicKey> pubs = {server_.pub};
  MultiServerUserKey key = mstre.user_key(user_.a, pubs);
  expect_truncations_throw(key.to_bytes(), [&](ByteSpan b) {
    return MultiServerUserKey::from_bytes(mstre.params(), b);
  });
  MultiServerCiphertext ct = mstre.encrypt(to_bytes("m"), key, pubs, "T", rng_);
  expect_truncations_throw(ct.to_bytes(), [&](ByteSpan b) {
    return MultiServerCiphertext::from_bytes(mstre.params(), b);
  });
}

TEST_F(WireRobustness, AnyCiphertextTruncations) {
  PolicyLock lock(params::load("tre-toy-96"));
  std::vector<std::string> conds = {"c1", "c2"};
  AnyCiphertext ct = lock.lock_any(to_bytes("m"), user_.pub, server_.pub, conds, rng_);
  expect_truncations_throw(ct.to_bytes(), [&](ByteSpan b) {
    return AnyCiphertext::from_bytes(lock.scheme().params(), b);
  });
}

TEST_F(WireRobustness, HybridCiphertextTruncations) {
  baselines::HybridTre hybrid(params::load("tre-toy-96"));
  baselines::PkeKeyPair pke = hybrid.pke_keygen(rng_);
  auto ct = hybrid.encrypt(to_bytes("m"), pke, server_.pub, "T", rng_);
  expect_truncations_throw(ct.to_bytes(), [&](ByteSpan b) {
    return baselines::HybridCiphertext::from_bytes(hybrid.params(), b);
  });
}

}  // namespace
}  // namespace tre::core
