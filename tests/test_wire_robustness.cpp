// Adversarial wire-format tests: every public deserializer is fed
// systematically truncated, extended and bit-flipped images of valid
// encodings. The contract: parsing either throws tre::Error or yields an
// object that fails cryptographic verification — never a crash, never a
// silently-accepted forgery of a *verifying* artifact.
#include <gtest/gtest.h>

#include "baselines/hybrid.h"
#include "core/multiserver.h"
#include "core/policylock.h"
#include "core/tre.h"
#include "hashing/drbg.h"

namespace tre::core {
namespace {

class WireRobustness : public ::testing::Test {
 protected:
  WireRobustness()
      : scheme_(params::load("tre-toy-96")),
        rng_(to_bytes("wire-tests")),
        server_(scheme_.server_keygen(rng_)),
        user_(scheme_.user_keygen(server_.pub, rng_)) {}

  // Parses every truncation of `wire`; all must throw (a shorter valid
  // encoding would be a framing ambiguity).
  template <typename ParseFn>
  void expect_truncations_throw(const Bytes& wire, ParseFn parse) {
    for (size_t len = 0; len < wire.size(); ++len) {
      ByteSpan cut(wire.data(), len);
      EXPECT_THROW((void)parse(cut), Error) << "accepted truncation to " << len;
    }
    Bytes extended = wire;
    extended.push_back(0x00);
    EXPECT_THROW((void)parse(extended), Error) << "accepted trailing byte";
  }

  // Flips each bit of `wire` and parses; throwing is fine, returning is
  // fine too — the caller then checks semantic rejection.
  template <typename ParseFn, typename AcceptFn>
  void flip_bits(const Bytes& wire, ParseFn parse, AcceptFn on_parsed) {
    for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
      Bytes mutated = wire;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      try {
        on_parsed(parse(mutated), bit);
      } catch (const Error&) {
        // rejected at parse time: acceptable
      }
    }
  }

  TreScheme scheme_;
  hashing::HmacDrbg rng_;
  ServerKeyPair server_;
  UserKeyPair user_;
};

TEST_F(WireRobustness, KeyUpdateTruncationAndFlips) {
  KeyUpdate upd = scheme_.issue_update(server_, "2030-01-01");
  Bytes wire = upd.to_bytes();
  auto parse = [&](ByteSpan b) { return KeyUpdate::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  // Any surviving single-bit mutation must fail self-authentication.
  flip_bits(wire, parse, [&](const KeyUpdate& parsed, size_t bit) {
    EXPECT_FALSE(scheme_.verify_update(server_.pub, parsed))
        << "bit " << bit << " produced a verifying forgery";
  });
}

TEST_F(WireRobustness, ServerPublicKeyTruncations) {
  Bytes wire = server_.pub.to_bytes();
  expect_truncations_throw(
      wire, [&](ByteSpan b) { return ServerPublicKey::from_bytes(scheme_.params(), b); });
}

TEST_F(WireRobustness, UserPublicKeyFlipsNeverVerify) {
  Bytes wire = user_.pub.to_bytes();
  auto parse = [&](ByteSpan b) { return UserPublicKey::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const UserPublicKey& parsed, size_t bit) {
    // A mutated key must no longer verify as bound to this server
    // (unless the mutation was rejected already).
    EXPECT_FALSE(scheme_.verify_user_public_key(server_.pub, parsed))
        << "bit " << bit;
  });
}

TEST_F(WireRobustness, BasicCiphertextTruncations) {
  Ciphertext ct = scheme_.encrypt(to_bytes("msg"), user_.pub, server_.pub, "T", rng_);
  expect_truncations_throw(
      ct.to_bytes(), [&](ByteSpan b) { return Ciphertext::from_bytes(scheme_.params(), b); });
}

TEST_F(WireRobustness, FoCiphertextFlipsNeverDecrypt) {
  Bytes msg = to_bytes("integrity matters");
  FoCiphertext ct = scheme_.encrypt_fo(msg, user_.pub, server_.pub, "T", rng_);
  KeyUpdate upd = scheme_.issue_update(server_, "T");
  Bytes wire = ct.to_bytes();
  auto parse = [&](ByteSpan b) { return FoCiphertext::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const FoCiphertext& parsed, size_t bit) {
    auto out = scheme_.decrypt_fo(parsed, user_.a, upd, server_.pub);
    EXPECT_FALSE(out.has_value()) << "bit " << bit << " survived the FO check";
  });
}

TEST_F(WireRobustness, ReactCiphertextFlipsNeverDecrypt) {
  Bytes msg = to_bytes("integrity matters");
  ReactCiphertext ct = scheme_.encrypt_react(msg, user_.pub, server_.pub, "T", rng_);
  KeyUpdate upd = scheme_.issue_update(server_, "T");
  Bytes wire = ct.to_bytes();
  auto parse = [&](ByteSpan b) { return ReactCiphertext::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const ReactCiphertext& parsed, size_t bit) {
    auto out = scheme_.decrypt_react(parsed, user_.a, upd);
    EXPECT_FALSE(out.has_value()) << "bit " << bit << " survived the MAC";
  });
}

TEST_F(WireRobustness, MultiServerArtifactsTruncations) {
  MultiServerTre mstre(params::load("tre-toy-96"));
  std::vector<ServerPublicKey> pubs = {server_.pub};
  MultiServerUserKey key = mstre.user_key(user_.a, pubs);
  expect_truncations_throw(key.to_bytes(), [&](ByteSpan b) {
    return MultiServerUserKey::from_bytes(mstre.params(), b);
  });
  MultiServerCiphertext ct = mstre.encrypt(to_bytes("m"), key, pubs, "T", rng_);
  expect_truncations_throw(ct.to_bytes(), [&](ByteSpan b) {
    return MultiServerCiphertext::from_bytes(mstre.params(), b);
  });
}

TEST_F(WireRobustness, AnyCiphertextTruncations) {
  PolicyLock lock(params::load("tre-toy-96"));
  std::vector<std::string> conds = {"c1", "c2"};
  AnyCiphertext ct = lock.lock_any(to_bytes("m"), user_.pub, server_.pub, conds, rng_);
  expect_truncations_throw(ct.to_bytes(), [&](ByteSpan b) {
    return AnyCiphertext::from_bytes(lock.scheme().params(), b);
  });
}

TEST_F(WireRobustness, KeyUpdateGarbageCorpus) {
  // Pure noise at many lengths — including lengths that happen to match
  // a genuine encoding — must never crash, and must never verify. This
  // is exactly what a kGarbage Byzantine mirror serves (simnet/faults.h).
  KeyUpdate genuine = scheme_.issue_update(server_, "2030-01-01");
  size_t honest_len = genuine.to_bytes().size();
  hashing::HmacDrbg fuzz(to_bytes("garbage-corpus"));
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{7},
                     size_t{16}, size_t{33}, honest_len - 1, honest_len,
                     honest_len + 1, size_t{256}, size_t{1024}}) {
    for (int sample = 0; sample < 8; ++sample) {
      Bytes junk(len);
      fuzz.fill(junk);
      std::optional<KeyUpdate> parsed =
          KeyUpdate::try_from_bytes(scheme_.params(), junk);
      if (parsed) {
        EXPECT_FALSE(scheme_.verify_update(server_.pub, *parsed))
            << "random " << len << "-byte blob verified";
      }
    }
  }
}

TEST_F(WireRobustness, TryFromBytesMatchesThrowingParser) {
  // try_from_bytes is the noexcept-shaped twin of from_bytes: nullopt
  // exactly where from_bytes throws, identical value where it succeeds.
  KeyUpdate upd = scheme_.issue_update(server_, "2030-01-01");
  Bytes wire = upd.to_bytes();
  std::optional<KeyUpdate> ok = KeyUpdate::try_from_bytes(scheme_.params(), wire);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, upd);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        KeyUpdate::try_from_bytes(scheme_.params(), ByteSpan(wire.data(), len)))
        << "length " << len;
  }
}

TEST_F(WireRobustness, KeyUpdateLengthFieldManipulation) {
  // The tag-length prefix is attacker-controlled framing: every possible
  // value of the 16-bit field must parse cleanly or throw — lying about
  // the tag length must not walk the parser out of bounds.
  KeyUpdate upd = scheme_.issue_update(server_, "2030-01-01");
  Bytes wire = upd.to_bytes();
  for (unsigned v = 0; v <= 0xffff; ++v) {
    Bytes mutated = wire;
    mutated[0] = static_cast<std::uint8_t>(v >> 8);
    mutated[1] = static_cast<std::uint8_t>(v & 0xff);
    std::optional<KeyUpdate> parsed =
        KeyUpdate::try_from_bytes(scheme_.params(), mutated);
    if (parsed && scheme_.verify_update(server_.pub, *parsed)) {
      // The genuine length reproduces the genuine update — the ONLY
      // value allowed to still verify.
      EXPECT_EQ(mutated, wire)
          << "length field " << v << " produced a verifying forgery";
    }
  }
}

TEST_F(WireRobustness, CiphertextGarbageCorpus) {
  // Noise fed to the ciphertext parsers, routed through the non-throwing
  // try_from_bytes twins: nullopt or a parse, never a crash.
  Ciphertext genuine =
      scheme_.encrypt(to_bytes("msg"), user_.pub, server_.pub, "T", rng_);
  size_t honest_len = genuine.to_bytes().size();
  hashing::HmacDrbg fuzz(to_bytes("ct-garbage"));
  PolicyLock lock(params::load("tre-toy-96"));
  for (size_t len : {size_t{0}, size_t{1}, size_t{5}, size_t{32}, honest_len,
                     honest_len + 7, size_t{512}}) {
    for (int sample = 0; sample < 8; ++sample) {
      Bytes junk(len);
      fuzz.fill(junk);
      (void)Ciphertext::try_from_bytes(scheme_.params(), junk);
      (void)FoCiphertext::try_from_bytes(scheme_.params(), junk);
      (void)ReactCiphertext::try_from_bytes(scheme_.params(), junk);
      (void)SealedCiphertext::try_from_bytes(scheme_.params(), junk);
      try {
        (void)AnyCiphertext::from_bytes(scheme_.params(), junk);
      } catch (const Error&) {
      }
    }
  }
}

TEST_F(WireRobustness, CiphertextTryFromBytesMatchesThrowingParser) {
  // Same contract KeyUpdate::try_from_bytes already honours, for all
  // three flavours: nullopt exactly where from_bytes throws, identical
  // re-encoding where it succeeds.
  Bytes msg = to_bytes("twin parsers");
  Ciphertext basic = scheme_.encrypt(msg, user_.pub, server_.pub, "T", rng_);
  FoCiphertext fo = scheme_.encrypt_fo(msg, user_.pub, server_.pub, "T", rng_);
  ReactCiphertext react = scheme_.encrypt_react(msg, user_.pub, server_.pub, "T", rng_);

  auto check = [&](const Bytes& wire, auto try_parse) {
    auto ok = try_parse(ByteSpan(wire));
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->to_bytes(), wire);
    for (size_t len = 0; len < wire.size(); ++len) {
      EXPECT_FALSE(try_parse(ByteSpan(wire.data(), len))) << "length " << len;
    }
  };
  check(basic.to_bytes(),
        [&](ByteSpan b) { return Ciphertext::try_from_bytes(scheme_.params(), b); });
  check(fo.to_bytes(),
        [&](ByteSpan b) { return FoCiphertext::try_from_bytes(scheme_.params(), b); });
  check(react.to_bytes(),
        [&](ByteSpan b) { return ReactCiphertext::try_from_bytes(scheme_.params(), b); });
}

TEST_F(WireRobustness, SealedCiphertextTruncations) {
  for (Mode mode : {Mode::kBasic, Mode::kFo, Mode::kReact}) {
    SealedCiphertext sc =
        scheme_.seal(mode, to_bytes("msg"), user_.pub, server_.pub, "T", rng_);
    expect_truncations_throw(sc.to_bytes(), [&](ByteSpan b) {
      return SealedCiphertext::from_bytes(scheme_.params(), b);
    });
  }
}

TEST_F(WireRobustness, SealedCiphertextUnknownModeByte) {
  SealedCiphertext sc =
      scheme_.seal(Mode::kFo, to_bytes("msg"), user_.pub, server_.pub, "T", rng_);
  Bytes wire = sc.to_bytes();
  for (unsigned b = 0; b <= 0xff; ++b) {
    if (b == 1 || b == 2 || b == 3) continue;
    Bytes mutated = wire;
    mutated[0] = static_cast<std::uint8_t>(b);
    EXPECT_FALSE(SealedCiphertext::try_from_bytes(scheme_.params(), mutated))
        << "mode byte " << b << " accepted";
  }
}

TEST_F(WireRobustness, SealedCiphertextModeConfusionNeverAccepted) {
  // Relabelling a sealed body as a different flavour is a framing attack:
  // the parse may throw (layout mismatch), and when it happens to parse,
  // the CCA flavours must refuse to open it. (A body relabelled as kBasic
  // may emit garbage — Basic is the CPA flavour and carries no tag — but
  // must not crash.)
  KeyUpdate upd = scheme_.issue_update(server_, "T");
  for (Mode from : {Mode::kBasic, Mode::kFo, Mode::kReact}) {
    SealedCiphertext sc =
        scheme_.seal(from, to_bytes("confusion"), user_.pub, server_.pub, "T", rng_);
    Bytes wire = sc.to_bytes();
    for (std::uint8_t to : {std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{3}}) {
      if (to == static_cast<std::uint8_t>(from)) continue;
      Bytes mutated = wire;
      mutated[0] = to;
      std::optional<SealedCiphertext> parsed =
          SealedCiphertext::try_from_bytes(scheme_.params(), mutated);
      if (!parsed) continue;
      auto out = scheme_.open(*parsed, user_.a, upd, server_.pub);
      if (parsed->mode() != Mode::kBasic) {
        EXPECT_FALSE(out.has_value())
            << mode_name(from) << " body opened under " << mode_name(parsed->mode());
      }
    }
  }
}

TEST_F(WireRobustness, SealedFoCiphertextFlipsNeverOpen) {
  // The unified wire inherits the FO flavour's CCA robustness: any
  // single-bit flip — including in the mode byte — throws, refuses, or
  // (mode byte -> kBasic only) degrades to garbage, never crashes and
  // never opens to the true plaintext under a CCA flavour.
  Bytes msg = to_bytes("integrity matters");
  SealedCiphertext sc = scheme_.seal(Mode::kFo, msg, user_.pub, server_.pub, "T", rng_);
  KeyUpdate upd = scheme_.issue_update(server_, "T");
  Bytes wire = sc.to_bytes();
  auto parse = [&](ByteSpan b) { return SealedCiphertext::from_bytes(scheme_.params(), b); };
  expect_truncations_throw(wire, parse);
  flip_bits(wire, parse, [&](const SealedCiphertext& parsed, size_t bit) {
    auto out = scheme_.open(parsed, user_.a, upd, server_.pub);
    if (parsed.mode() == Mode::kBasic) return;  // CPA flavour: garbage in-contract
    EXPECT_FALSE(out.has_value()) << "bit " << bit << " survived the sealed open";
  });
}

TEST_F(WireRobustness, AnyCiphertextFlipsNeverOpenWrongly) {
  // The multi-wrap fallback ciphertext: a flipped bit may only turn
  // decryption into a throw or garbage, never a crash. (Any* carries no
  // integrity tag of its own — callers needing CCA wrap FO/REACT — so
  // garbage output is in-contract; memory safety is what is on trial,
  // under ASan/UBSan in the sanitizer build.)
  PolicyLock lock(params::load("tre-toy-96"));
  std::vector<std::string> conds = {"c1", "c2"};
  Bytes msg = to_bytes("fallback wire");
  AnyCiphertext ct = lock.lock_any(msg, user_.pub, server_.pub, conds, rng_);
  KeyUpdate upd = scheme_.issue_update(server_, "c2");
  Bytes wire = ct.to_bytes();
  auto parse = [&](ByteSpan b) { return AnyCiphertext::from_bytes(scheme_.params(), b); };
  flip_bits(wire, parse, [&](const AnyCiphertext& parsed, size_t) {
    try {
      (void)lock.unlock_any(parsed, user_.a, upd);
    } catch (const Error&) {
      // semantic rejection is fine; crashing is not
    }
  });
}

TEST_F(WireRobustness, HybridCiphertextTruncations) {
  baselines::HybridTre hybrid(params::load("tre-toy-96"));
  baselines::PkeKeyPair pke = hybrid.pke_keygen(rng_);
  auto ct = hybrid.encrypt(to_bytes("m"), pke, server_.pub, "T", rng_);
  expect_truncations_throw(ct.to_bytes(), [&](ByteSpan b) {
    return baselines::HybridCiphertext::from_bytes(hybrid.params(), b);
  });
}

}  // namespace
}  // namespace tre::core
